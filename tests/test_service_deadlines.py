"""Deadline semantics, admission control, and graceful degradation.

Everything here runs the serial executor (the dispatcher thread does the
solving) so the timing the tests rely on — a fault-injected slow solve
occupying the dispatcher, a deadline already expired at triage — is
deterministic, not a race against thread scheduling.
"""

from __future__ import annotations

import time

import pytest

from repro.core.auction import AuctionProblem
from repro.core.baselines import greedy_channel_allocation
from repro.experiments.workloads import metro_disk_scene
from repro.service import (
    AuctionRequest,
    AuctionService,
    DeadlineExceeded,
    FaultPlan,
    FaultSpec,
    InjectedFaultError,
    ShedError,
)
from repro.valuations.generators import random_xor_valuations

N = 16
K = 3


@pytest.fixture(scope="module")
def scene():
    return metro_disk_scene(N, seed=501)


def make_service(scene, **overrides):
    options = {"executor": "serial", "coalesce_window": 0.0}
    options.update(overrides)
    service = AuctionService(**options)
    service.register_scene(scene)
    return service


def request(service, seed=1, **kwargs):
    [scene_id] = service.registry.ids()
    vals = kwargs.pop("valuations", None)
    if vals is None:
        vals = random_xor_valuations(N, K, seed=seed)
    return AuctionRequest(scene_id, K, vals, seed=seed, **kwargs)


def wait_until(predicate, timeout=30.0):
    deadline = time.perf_counter() + timeout
    while not predicate():
        if time.perf_counter() > deadline:
            raise AssertionError("condition not reached in time")
        time.sleep(0.001)


class TestValidation:
    def test_nonpositive_deadline_rejected(self, scene):
        with make_service(scene) as service:
            with pytest.raises(ValueError, match="deadline"):
                service.submit(request(service, deadline=0.0))
            with pytest.raises(ValueError, match="deadline"):
                service.submit(request(service, deadline=-1.0))

    def test_bad_admission_and_degradation_options_rejected(self):
        with pytest.raises(ValueError, match="max_queue"):
            AuctionService(max_queue=0)
        with pytest.raises(ValueError, match="degrade_headroom"):
            AuctionService(degrade_headroom=-0.5)
        with pytest.raises(ValueError, match="solve_time_hint"):
            AuctionService(solve_time_hint=0.0)

    def test_config_surfaces_in_metrics_snapshot(self, scene):
        plan = FaultPlan([FaultSpec(site="service.solve", kind="slow", delay=0.01)])
        with make_service(
            scene, max_queue=8, degrade_headroom=2.0, fault_plan=plan
        ) as service:
            config = service.metrics_snapshot()["config"]
            assert config["max_queue"] == 8
            assert config["degrade_headroom"] == 2.0
            assert config["fault_plan"] == plan.to_dict()


class TestDeadlineExpiry:
    def test_expired_before_dispatch_fails_typed(self, scene):
        """A request whose deadline passes while it queues behind a slow
        solve fails with DeadlineExceeded, counted as a timeout."""
        plan = FaultPlan(
            # keyed slow fault: only the seed-1 request browns out
            [FaultSpec(site="service.solve", kind="slow", delay=0.4)]
        )
        service = make_service(scene, fault_plan=plan, degrade_headroom=0.0)
        blocker = service.submit(request(service, seed=1))
        doomed = service.submit(request(service, seed=2, deadline=0.05))
        assert blocker.result(timeout=60).feasible
        with pytest.raises(DeadlineExceeded, match="expired before dispatch"):
            doomed.result(timeout=60)
        counts = service.metrics.counts()
        assert counts["timeouts"] == 1
        assert counts["failed"] == 1
        assert counts["completed"] == 1
        assert service.close(timeout=60)

    def test_generous_deadline_serves_normally(self, scene):
        with make_service(scene) as service:
            future = service.submit(request(service, seed=3, deadline=120.0))
            result = future.result(timeout=60)
            assert result.feasible
            assert not result.details.get("degraded")
            assert service.metrics.counts()["timeouts"] == 0


class TestGracefulDegradation:
    def test_low_budget_allocate_degrades_to_greedy(self, scene):
        """With the EWMA hinted far above the remaining budget, triage
        serves the request by the greedy baseline — flagged, LP-free,
        and identical to calling the baseline directly."""
        service = make_service(scene, solve_time_hint=30.0, degrade_headroom=1.0)
        vals = random_xor_valuations(N, K, seed=4)
        future = service.submit(request(service, seed=4, valuations=vals, deadline=5.0))
        result = future.result(timeout=60)
        assert result.details == {"degraded": True, "fallback": "greedy"}
        assert result.lp_value == 0.0
        assert result.guarantee == float("inf")
        assert result.lp_iterations == 0
        problem = AuctionProblem(scene, K, list(vals))
        expected = greedy_channel_allocation(problem)
        assert result.allocation == expected
        assert result.welfare == problem.welfare(expected)
        counts = service.metrics.counts()
        assert counts["degraded"] == 1 and counts["completed"] == 1
        assert service.close(timeout=60)

    def test_zero_headroom_disables_degradation(self, scene):
        with make_service(scene, solve_time_hint=30.0, degrade_headroom=0.0) as service:
            future = service.submit(request(service, seed=5, deadline=5.0))
            result = future.result(timeout=60)
            assert not result.details.get("degraded")
            assert result.lp_value > 0.0
            assert service.metrics.counts()["degraded"] == 0

    def test_truthful_requests_never_degrade(self, scene):
        """Degradation swaps the allocation algorithm; a truthful request
        needs its payments, so triage always runs it in full."""
        with make_service(scene, solve_time_hint=30.0) as service:
            future = service.submit(
                request(service, seed=6, deadline=5.0, mode="truthful")
            )
            outcome = future.result(timeout=120)
            assert outcome.payments is not None
            assert service.metrics.counts()["degraded"] == 0

    def test_ewma_folds_observations(self, scene):
        with make_service(scene) as service:
            assert service._solve_estimate() is None
            service._observe_solve_time(1.0)
            assert service._solve_estimate() == pytest.approx(1.0)
            service._observe_solve_time(2.0)
            assert service._solve_estimate() == pytest.approx(1.2)


class TestAdmissionControl:
    def test_full_queue_sheds_synchronously(self, scene):
        plan = FaultPlan([FaultSpec(site="service.solve", kind="slow", delay=0.4)])
        service = make_service(scene, fault_plan=plan, max_queue=2)
        blocker = service.submit(request(service, seed=1))
        # the dispatcher picks the blocker up and sits in its slow solve
        wait_until(lambda: service._queued == 0)
        queued = [service.submit(request(service, seed=2 + i)) for i in range(2)]
        with pytest.raises(ShedError, match="queue full"):
            service.submit(request(service, seed=9))
        assert service.metrics.counts()["shed"] == 1
        # shed rejected the new request only; everything accepted completes
        for future in [blocker, *queued]:
            assert future.result(timeout=60).feasible
        assert service.drain(timeout=60)
        counts = service.metrics.counts()
        assert counts["completed"] == 3 and counts["failed"] == 0
        assert service.close(timeout=60)

    def test_unbounded_queue_never_sheds(self, scene):
        with make_service(scene) as service:
            futures = [service.submit(request(service, seed=i)) for i in range(6)]
            assert all(f.result(timeout=60).feasible for f in futures)
            assert service.metrics.counts()["shed"] == 0


class TestDrainUnderFaults:
    def test_injected_backend_errors_fail_typed_and_drain_completes(self, scene):
        """drain()/close() never drop accepted work: with every solve
        erroring, each accepted future still resolves — typed."""
        plan = FaultPlan([FaultSpec(site="service.solve", kind="error")])
        service = make_service(scene, fault_plan=plan)
        futures = [service.submit(request(service, seed=i)) for i in range(4)]
        assert service.drain(timeout=60)
        for future in futures:
            assert future.done()
            with pytest.raises(InjectedFaultError):
                future.result()
        counts = service.metrics.counts()
        assert counts["failed"] == 4 and counts["completed"] == 0
        assert service.healthy()  # serial path: nothing to break
        assert service.close(timeout=60)
        assert not service.healthy()  # closed services do not serve

    def test_error_fault_can_be_keyed_to_specific_requests(self, scene):
        plan = FaultPlan(
            [FaultSpec(site="service.solve", kind="error", probability=0.5)],
            seed=11,
        )
        service = make_service(scene, fault_plan=plan)
        futures = {i: service.submit(request(service, seed=i)) for i in range(12)}
        assert service.drain(timeout=120)
        outcomes = {
            i: (f.exception() if f.exception() else f.result())
            for i, f in futures.items()
        }
        failed = {i for i, out in outcomes.items() if isinstance(out, Exception)}
        assert 0 < len(failed) < len(futures)  # p=0.5 splits the population
        assert all(isinstance(outcomes[i], InjectedFaultError) for i in failed)
        # the keyed draw is replayable: a fresh service over the same plan
        # fails exactly the same request seeds
        plan.reset()
        replay = make_service(scene, fault_plan=plan)
        futures2 = {i: replay.submit(request(replay, seed=i)) for i in range(12)}
        assert replay.drain(timeout=120)
        failed2 = {i for i, f in futures2.items() if f.exception() is not None}
        assert failed2 == failed
        assert service.close(timeout=60) and replay.close(timeout=60)
