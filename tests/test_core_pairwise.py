"""Tests for the pairwise-independence derandomization."""

from __future__ import annotations

import math

import pytest

from repro.core.auction_lp import AuctionLP
from repro.core.pairwise import (
    pairwise_derandomize,
    smallest_prime_at_least,
)


class TestSmallestPrime:
    def test_known_values(self):
        assert smallest_prime_at_least(1) == 2
        assert smallest_prime_at_least(2) == 2
        assert smallest_prime_at_least(14) == 17
        assert smallest_prime_at_least(100) == 101
        assert smallest_prime_at_least(101) == 101

    def test_primality(self):
        for n in (30, 90, 200):
            p = smallest_prime_at_least(n)
            assert p >= n
            assert all(p % d for d in range(2, int(math.isqrt(p)) + 1))


class TestPairwiseDerandomize:
    def test_deterministic(self, protocol_problem):
        lp = AuctionLP(protocol_problem).solve()
        a = pairwise_derandomize(protocol_problem, lp, max_seeds=2000)
        b = pairwise_derandomize(protocol_problem, lp, max_seeds=2000)
        assert a.allocation == b.allocation
        assert a.best_seed == b.best_seed

    def test_feasible(self, protocol_problem):
        lp = AuctionLP(protocol_problem).solve()
        result = pairwise_derandomize(protocol_problem, lp, max_seeds=2000)
        assert protocol_problem.is_feasible(result.allocation)

    def test_meets_bound_with_quantization_slack(self, protocol_problem):
        """Best-of-seed-space ≥ expectation over the space, which matches
        Theorem 3 up to the 1/q quantization of the marginals."""
        lp = AuctionLP(protocol_problem).solve()
        result = pairwise_derandomize(protocol_problem, lp)  # full space
        k, rho = protocol_problem.k, protocol_problem.rho
        total_value = sum(col.value for col in lp.columns)
        bound = lp.value / (8.0 * math.sqrt(k) * rho) - total_value / result.q
        assert result.welfare >= bound - 1e-9

    def test_weighted_partly_feasible(self, weighted_problem):
        from repro.core.conflict_resolution import check_condition5

        lp = AuctionLP(weighted_problem).solve()
        result = pairwise_derandomize(weighted_problem, lp, max_seeds=1000)
        assert check_condition5(weighted_problem, result.allocation)

    def test_seed_cap_respected(self, protocol_problem):
        lp = AuctionLP(protocol_problem).solve()
        result = pairwise_derandomize(protocol_problem, lp, max_seeds=500)
        # Two classes, each scanning at most ~max_seeds plus stride slack.
        assert result.seeds_scanned <= 2 * 520

    def test_q_override(self, protocol_problem):
        lp = AuctionLP(protocol_problem).solve()
        result = pairwise_derandomize(protocol_problem, lp, q=37, max_seeds=3000)
        assert result.q == 37

    def test_welfare_matches_allocation(self, protocol_problem):
        lp = AuctionLP(protocol_problem).solve()
        result = pairwise_derandomize(protocol_problem, lp, max_seeds=1000)
        assert result.welfare == pytest.approx(
            protocol_problem.welfare(result.allocation)
        )
