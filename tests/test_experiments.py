"""Smoke + contract tests for the experiment harness (tiny parameters)."""

from __future__ import annotations

import pytest

from repro.experiments import ALL_EXPERIMENTS
from repro.experiments.harness import (
    run_a1_split_ablation,
    run_a2_resolution_ablation,
    run_a3_scaling_ablation,
    run_a5_derandomization_comparison,
    run_e1,
    run_e2,
    run_e3,
    run_e6,
    run_e8,
    run_e9,
    run_e10,
    run_e11,
    run_e13,
    run_e14,
    run_e15,
)
from repro.experiments.report import render_report, run_all
from repro.experiments.workloads import (
    disk_auction,
    physical_auction,
    power_control_auction,
    protocol_auction,
    theorem18_auction,
)


class TestWorkloads:
    def test_protocol_auction_shape(self):
        p = protocol_auction(8, 3, seed=1)
        assert p.n == 8 and p.k == 3
        assert not p.is_weighted

    def test_disk_auction(self):
        p = disk_auction(8, 2, seed=2)
        assert p.rho == 5

    def test_physical_auction_weighted(self):
        p = physical_auction(8, 2, seed=3)
        assert p.is_weighted

    def test_physical_auction_schemes(self):
        for scheme in ("uniform", "linear", "mean"):
            p = physical_auction(6, 2, seed=4, scheme=scheme)
            assert p.is_weighted

    def test_power_control_auction(self):
        p = power_control_auction(8, 2, seed=5)
        assert p.structure.metadata["model"] == "power-control"

    def test_theorem18_auction(self):
        problem, base = theorem18_auction(10, 4, 2, seed=6)
        assert problem.k == 2 and problem.rho == 2
        assert base.n == 10

    def test_reproducible(self):
        a = protocol_auction(8, 3, seed=7)
        b = protocol_auction(8, 3, seed=7)
        assert sorted(a.graph.edges()) == sorted(b.graph.edges())


class TestExperimentContracts:
    """Small-parameter runs asserting each experiment's headline claim."""

    def test_e1_bounds(self):
        out = run_e1(n=15, ks=(1, 4), reps=10, seed=1)
        assert out.summary["all_bounds_met"]

    def test_e2_bound(self):
        out = run_e2(ns=(15,), reps=2, seed=2)
        assert out.summary["worst_measured"] <= 5

    def test_e3_bound(self):
        out = run_e3(deltas=(1.0,), n=15, reps=2, seed=3)
        assert out.summary["all_within_bound"]

    def test_e6_bounds(self):
        out = run_e6(n=12, ks=(2,), reps=5, seed=4)
        assert out.summary["all_bounds_met"]
        assert out.summary["rounds_within_log"]

    def test_e8_exactness(self):
        out = run_e8(n=8, k=2, misreports=2, seed=5)
        assert out.summary["mass_error"] <= 1e-7
        assert out.summary["max_misreport_gain"] <= 1e-6

    def test_e9_bounds(self):
        out = run_e9(n=12, d=4, ks=(1, 2), reps=10, seed=6)
        assert out.summary["all_bounds_met"]

    def test_e10_gap(self):
        out = run_e10(ns=(4, 8), seed=7)
        assert out.summary["max_inductive_gap"] <= 2.0 + 1e-9

    def test_e11_ordering(self):
        out = run_e11(n=8, k=2, instances=3, seed=8)
        assert 0 <= out.summary["derandomized"] <= 1.0 + 1e-9

    def test_e13_deterministic_bounds(self):
        out = run_e13(n=15, ks=(1, 4), seed=9)
        assert out.summary["all_bounds_met"]

    def test_e14_parallelism(self):
        out = run_e14(ns=(8, 12), alphas=(1.5, 3.5), seed=10)
        assert (
            out.summary["mean_parallelism_fading"]
            >= out.summary["mean_parallelism_nonfading"]
        )

    def test_e15_valid(self):
        out = run_e15(ns=(12,), seed=11)
        assert out.summary["all_valid"]

    def test_e16_ratio_range(self):
        from repro.experiments.harness import run_e16

        out = run_e16(n=8, k=2, instances=2, orders=4, seed=16)
        assert 0 < out.summary["mean_competitive_ratio"] <= 1.0 + 1e-9

    def test_a1_runs(self):
        out = run_a1_split_ablation(n=12, k=4, reps=5, seed=12)
        assert set(out.summary) == {"split", "no_split"}

    def test_a2_survivors_dominates(self):
        out = run_a2_resolution_ablation(n=12, k=2, reps=10, seed=13)
        assert out.summary["survivors"] >= out.summary["tentative"] - 1e-9

    def test_a3_monotone_in_scale(self):
        out = run_a3_scaling_ablation(n=15, k=2, reps=15, seed=14)
        # Smaller scale → more mass rounded → weakly more welfare on average.
        assert out.summary[0.25] >= out.summary[2.0] - 1e-9

    def test_a5_deterministic_beats_mean(self):
        out = run_a5_derandomization_comparison(n=12, k=2, reps=10, seed=15)
        assert out.summary["conditional"] >= out.summary["randomized_mean"]


class TestReport:
    def test_run_subset_and_render(self):
        results = run_all(["E10"])
        text = render_report(results)
        assert "E10" in text and "total: 1 experiments" in text

    def test_unknown_id(self):
        with pytest.raises(KeyError):
            run_all(["E99"])

    def test_all_ids_registered(self):
        assert set(ALL_EXPERIMENTS) == {
            *(f"E{i}" for i in range(1, 17)),
            "A1",
            "A2",
            "A3",
            "A4",
            "A5",
            "A6",
        }

    def test_output_render_contains_table(self):
        out = run_e10(ns=(4,), seed=1)
        rendered = out.render()
        assert "edge_lp" in rendered and out.experiment in rendered
