"""Tests for the exact MILP solver and the baseline algorithms."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.auction import AuctionProblem
from repro.core.auction_lp import AuctionLP
from repro.core.baselines import (
    edge_lp_value,
    greedy_channel_allocation,
    local_ratio_independent_set,
    round_edge_lp,
)
from repro.core.exact import solve_exact
from repro.geometry.links import random_links
from repro.graphs.conflict_graph import ConflictGraph, VertexOrdering
from repro.graphs.generators import clique, gnp_random_graph
from repro.graphs.independence import max_weight_independent_set
from repro.graphs.inductive import inductive_independence_number
from repro.interference.base import ConflictStructure
from repro.interference.physical import linear_power, physical_model_structure
from repro.interference.protocol import protocol_model
from repro.valuations.explicit import XORValuation
from repro.valuations.generators import random_xor_valuations


def small_problem(n=9, k=3, seed=41):
    links = random_links(n, seed=seed, length_range=(0.03, 0.1))
    cs = protocol_model(links, delta=1.0)
    vals = random_xor_valuations(n, k, seed=seed + 1)
    return AuctionProblem(cs, k, vals)


class TestSolveExact:
    def test_feasibility(self):
        problem = small_problem()
        result = solve_exact(problem)
        assert problem.is_feasible(result.allocation)
        assert result.value == pytest.approx(problem.welfare(result.allocation))

    def test_lp_upper_bounds_exact(self):
        problem = small_problem()
        result = solve_exact(problem)
        lp = AuctionLP(problem).solve()
        assert lp.value >= result.value - 1e-6

    def test_beats_or_matches_every_heuristic(self):
        problem = small_problem(seed=43)
        exact = solve_exact(problem)
        greedy = greedy_channel_allocation(problem)
        assert exact.value >= problem.welfare(greedy) - 1e-6

    def test_exact_on_single_channel_equals_mwis(self):
        # k=1 with single-channel bids: Problem 1 = MWIS.
        g = gnp_random_graph(10, 0.35, seed=44)
        rng = np.random.default_rng(45)
        profits = rng.integers(1, 20, size=10).astype(float)
        structure = ConflictStructure(g, VertexOrdering.identity(10), 3.0)
        vals = [XORValuation(1, {frozenset({0}): float(p)}) for p in profits]
        problem = AuctionProblem(structure, 1, vals)
        result = solve_exact(problem)
        _, mwis_value = max_weight_independent_set(g, profits)
        assert result.value == pytest.approx(mwis_value)

    def test_weighted_exact_feasible(self):
        links = random_links(8, seed=46, length_range=(0.03, 0.1))
        st = physical_model_structure(links, linear_power(links, 3.0))
        vals = random_xor_valuations(8, 2, seed=47)
        problem = AuctionProblem(st, 2, vals)
        result = solve_exact(problem)
        assert problem.is_feasible(result.allocation)

    def test_empty_problem(self):
        g = ConflictGraph(2)
        structure = ConflictStructure(g, VertexOrdering.identity(2), 1.0)
        vals = [XORValuation(1, {}) for _ in range(2)]
        problem = AuctionProblem(structure, 1, vals)
        result = solve_exact(problem)
        assert result.value == 0.0 and result.allocation == {}


class TestEdgeLP:
    def test_clique_integrality_gap(self):
        # Section 2.1: on K_n the edge LP gives n/2 with all-half x.
        for n in (4, 8, 16):
            x, value = edge_lp_value(clique(n), np.ones(n))
            assert value == pytest.approx(n / 2.0)

    def test_rounding_feasible(self):
        g = gnp_random_graph(15, 0.3, seed=48)
        profits = np.random.default_rng(49).random(15) * 10
        chosen, val = round_edge_lp(g, profits)
        assert g.is_independent(chosen)
        assert val == pytest.approx(float(profits[chosen].sum()))

    def test_no_edges_takes_everything(self):
        g = ConflictGraph(5)
        chosen, _ = round_edge_lp(g, np.ones(5))
        assert chosen == [0, 1, 2, 3, 4]


class TestLocalRatio:
    def test_output_independent(self):
        g = gnp_random_graph(20, 0.3, seed=50)
        _, ordering = inductive_independence_number(g)
        profits = np.random.default_rng(51).random(20) * 5
        chosen, val = local_ratio_independent_set(g, ordering, profits)
        assert g.is_independent(chosen)
        assert val == pytest.approx(float(profits[chosen].sum()))

    def test_rho_approximation_guarantee(self):
        # Akcoglu et al.: local ratio with the optimal ordering is a
        # ρ-approximation of MWIS.
        for seed in range(6):
            g = gnp_random_graph(14, 0.35, seed=seed)
            rho, ordering = inductive_independence_number(g)
            profits = np.random.default_rng(seed).integers(1, 30, size=14).astype(float)
            _, lr_value = local_ratio_independent_set(g, ordering, profits)
            _, opt_value = max_weight_independent_set(g, profits)
            assert lr_value >= opt_value / max(rho, 1) - 1e-9

    def test_clique_picks_max(self):
        g = clique(6)
        _, ordering = inductive_independence_number(g)
        profits = np.array([1.0, 5.0, 3.0, 2.0, 4.0, 1.0])
        chosen, val = local_ratio_independent_set(g, ordering, profits)
        assert chosen == [1] and val == 5.0


class TestGreedyChannel:
    def test_feasible_allocation(self):
        problem = small_problem(seed=52)
        alloc = greedy_channel_allocation(problem)
        assert problem.is_feasible(alloc)

    def test_weighted_feasible(self):
        links = random_links(10, seed=53, length_range=(0.03, 0.1))
        st = physical_model_structure(links, linear_power(links, 3.0))
        vals = random_xor_valuations(10, 3, seed=54)
        problem = AuctionProblem(st, 3, vals)
        alloc = greedy_channel_allocation(problem)
        assert problem.is_feasible(alloc)

    def test_nonzero_on_valuable_instances(self):
        problem = small_problem(seed=55)
        alloc = greedy_channel_allocation(problem)
        assert problem.welfare(alloc) > 0
