"""Tests for the weighted asymmetric-channels extension (Section 6)."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.asymmetric_weighted import (
    WeightedAsymmetricLP,
    WeightedAsymmetricProblem,
    complete_weighted_asymmetric,
    round_weighted_asymmetric,
)
from repro.geometry.links import random_links
from repro.graphs.conflict_graph import VertexOrdering
from repro.graphs.weighted_graph import WeightedConflictGraph
from repro.interference.physical import PhysicalModel, linear_power, uniform_power
from repro.valuations.generators import random_xor_valuations


def physical_asymmetric_problem(n=14, seed=301):
    """Channels with genuinely different weighted graphs: channel 0 under
    uniform power, channel 1 under linear power (different hardware per
    band — the paper's motivation for asymmetric channels)."""
    links = random_links(n, seed=seed, length_range=(0.02, 0.08))
    model = PhysicalModel(links, 3.0, 1.5)
    g0 = model.weighted_graph(uniform_power(links))
    g1 = model.weighted_graph(linear_power(links, 3.0))
    ordering = VertexOrdering.by_key(links.lengths, descending=True)
    from repro.graphs.inductive import weighted_rho_of_ordering

    rho = max(
        weighted_rho_of_ordering(g0, ordering).upper,
        weighted_rho_of_ordering(g1, ordering).upper,
        1.0,
    )
    vals = random_xor_valuations(n, 2, seed=seed + 1)
    return WeightedAsymmetricProblem([g0, g1], ordering, rho, vals)


class TestProblemValidation:
    def test_mismatched_sizes(self):
        g0 = WeightedConflictGraph(np.zeros((3, 3)))
        g1 = WeightedConflictGraph(np.zeros((4, 4)))
        with pytest.raises(ValueError):
            WeightedAsymmetricProblem([g0, g1], VertexOrdering.identity(3), 1.0, [])

    def test_per_channel_feasibility(self):
        w_dense = np.zeros((2, 2))
        w_dense[0, 1] = 2.0
        g0 = WeightedConflictGraph(w_dense)  # channel 0 conflicts
        g1 = WeightedConflictGraph(np.zeros((2, 2)))  # channel 1 free
        vals = random_xor_valuations(2, 2, seed=302)
        problem = WeightedAsymmetricProblem(
            [g0, g1], VertexOrdering.identity(2), 2.0, vals
        )
        assert not problem.is_feasible({0: frozenset({0}), 1: frozenset({0})})
        assert problem.is_feasible({0: frozenset({1}), 1: frozenset({1})})


class TestLP:
    def test_reduces_to_symmetric_when_equal(self):
        from repro.core.auction import AuctionProblem
        from repro.core.auction_lp import AuctionLP
        from repro.interference.base import WeightedConflictStructure

        links = random_links(10, seed=303, length_range=(0.02, 0.08))
        model = PhysicalModel(links, 3.0, 1.5)
        g = model.weighted_graph(linear_power(links, 3.0))
        ordering = VertexOrdering.by_key(links.lengths, descending=True)
        vals = random_xor_valuations(10, 2, seed=304)
        sym = AuctionProblem(
            WeightedConflictStructure(g, ordering, 3.0), 2, vals
        )
        asym = WeightedAsymmetricProblem([g, g], ordering, 3.0, vals)
        assert WeightedAsymmetricLP(asym).solve().value == pytest.approx(
            AuctionLP(sym).solve().value, rel=1e-6
        )

    def test_lp_value_positive(self):
        problem = physical_asymmetric_problem()
        assert WeightedAsymmetricLP(problem).solve().value > 0


class TestRounding:
    def test_partial_condition_holds(self):
        problem = physical_asymmetric_problem()
        solution = WeightedAsymmetricLP(problem).solve()
        rng = np.random.default_rng(305)
        for _ in range(5):
            alloc, info = round_weighted_asymmetric(problem, solution, rng)
            pos = problem.ordering.pos
            order = sorted(alloc, key=lambda v: pos[v])
            for i, v in enumerate(order):
                for j in alloc[v]:
                    total = sum(
                        problem.graphs[j].wbar(u, v)
                        for u in order[:i]
                        if j in alloc[u]
                    )
                    assert total < 0.5

    def test_scale_default(self):
        problem = physical_asymmetric_problem()
        solution = WeightedAsymmetricLP(problem).solve()
        _, info = round_weighted_asymmetric(
            problem, solution, np.random.default_rng(306)
        )
        assert info["scale"] == pytest.approx(4.0 * 2 * problem.rho)


class TestCompletion:
    def test_end_to_end_feasible(self):
        problem = physical_asymmetric_problem()
        solution = WeightedAsymmetricLP(problem).solve()
        rng = np.random.default_rng(307)
        for _ in range(8):
            partly, _ = round_weighted_asymmetric(problem, solution, rng)
            final, rounds = complete_weighted_asymmetric(problem, partly)
            assert problem.is_feasible(final)
            cap = problem.k * math.ceil(math.log2(max(2, problem.n)))
            assert rounds <= cap

    def test_overloaded_channel_split(self):
        # Star on channel 0 (center receives 1.2), channel 1 free: the
        # completion must separate the center from the leaves.
        n = 5
        w0 = np.zeros((n, n))
        for leaf in range(1, n):
            w0[leaf, 0] = 0.3
        g0 = WeightedConflictGraph(w0)
        g1 = WeightedConflictGraph(np.zeros((n, n)))
        vals = random_xor_valuations(n, 2, seed=308)
        problem = WeightedAsymmetricProblem(
            [g0, g1], VertexOrdering.identity(n), 1.2, vals
        )
        alloc = {v: frozenset({0}) for v in range(n)}
        final, rounds = complete_weighted_asymmetric(problem, alloc)
        assert problem.is_feasible(final)
        assert rounds == 2

    def test_empty_input(self):
        problem = physical_asymmetric_problem()
        final, rounds = complete_weighted_asymmetric(problem, {})
        assert final == {} and rounds == 0

    def test_mean_welfare_positive(self):
        problem = physical_asymmetric_problem()
        solution = WeightedAsymmetricLP(problem).solve()
        rng = np.random.default_rng(309)
        values = []
        for _ in range(30):
            partly, _ = round_weighted_asymmetric(problem, solution, rng)
            final, _ = complete_weighted_asymmetric(problem, partly)
            values.append(problem.welfare(final))
        assert np.mean(values) > 0
