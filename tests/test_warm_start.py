"""Warm-started LP re-solves: optimality, cache-hit accounting, fallback."""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine import BatchAuctionEngine, warm_start_stats
from repro.engine.compiled import CompiledAuction
from repro.engine.highs import IPM_MIN_ROWS, choose_solver, fast_backend_available
from repro.experiments.workloads import protocol_auction, reauction_fleet

pytestmark = pytest.mark.skipif(
    not fast_backend_available(), reason="persistent HiGHS backend unavailable"
)


def test_choose_solver_policy():
    assert choose_solver(IPM_MIN_ROWS - 1, 10) == "simplex"
    assert choose_solver(IPM_MIN_ROWS, 10) == "ipm"


def test_reauction_fleet_shares_matrix_pattern():
    fleet = reauction_fleet(3, 12, 4, seed=5)
    mats = [CompiledAuction(p)._build_csc() for p in fleet]
    a0 = mats[0][0]
    for a, b, _ in mats[1:]:
        assert np.array_equal(a0.indptr, a.indptr)
        assert np.array_equal(a0.indices, a.indices)
        assert np.array_equal(a0.data, a.data)
        assert np.array_equal(mats[0][1], b)
    assert fleet[0].structure is fleet[1].structure


def test_warm_engine_matches_cold_lp_optima():
    fleet_cold = reauction_fleet(6, 15, 5, seed=42)
    fleet_warm = reauction_fleet(6, 15, 5, seed=42)
    cold = BatchAuctionEngine(executor="serial").solve_many(fleet_cold, seed=3)
    before = warm_start_stats()
    warm = BatchAuctionEngine(executor="serial", lp_warm_start=True).solve_many(
        fleet_warm, seed=3
    )
    after = warm_start_stats()
    # every epoch after the first re-solves by mutating the loaded objective
    assert after["warm"] - before["warm"] >= len(fleet_warm) - 1
    for rc, rw in zip(cold.results, warm.results):
        assert rw.lp_value == pytest.approx(rc.lp_value, rel=1e-9, abs=1e-9)
        assert rw.feasible


def test_distinct_structures_do_not_warm_start():
    problems = [protocol_auction(12, 4, seed=100 + i) for i in range(3)]
    before = warm_start_stats()
    for problem in problems:
        CompiledAuction(problem).solve(seed=1, lp_warm_start=True)
    after = warm_start_stats()
    assert after["warm"] == before["warm"]  # different structures: all cold


def test_warm_flag_off_is_bit_identical_to_seed_path():
    fleet_a = reauction_fleet(4, 12, 4, seed=9)
    fleet_b = reauction_fleet(4, 12, 4, seed=9)
    r_plain = [CompiledAuction(p).solve(seed=7) for p in fleet_a]
    # warm flag on, but solved through fresh compiled instances one at a
    # time, alternating with an unrelated cold model load in between: the
    # warm path may or may not trigger, results must stay optimal
    engine = BatchAuctionEngine(executor="serial", lp_warm_start=True)
    r_warm = engine.solve_many(fleet_b, seed=7).results
    for a, b in zip(r_plain, r_warm):
        assert b.lp_value == pytest.approx(a.lp_value, rel=1e-9, abs=1e-9)
