"""Tests for the online-arrival baseline and asymmetric column generation."""

from __future__ import annotations

import pytest

from repro.core.asymmetric import (
    AsymmetricAuctionLP,
    solve_asymmetric_with_column_generation,
)
from repro.core.exact import solve_exact
from repro.core.online import online_greedy
from repro.experiments.workloads import protocol_auction, theorem18_auction


class TestOnlineGreedy:
    def test_feasible_output(self):
        problem = protocol_auction(12, 3, seed=501)
        result = online_greedy(problem, seed=1)
        assert problem.is_feasible(result.allocation)
        assert result.granted + result.rejected == problem.n

    def test_welfare_at_most_optimum(self):
        problem = protocol_auction(9, 2, seed=502)
        opt = solve_exact(problem).value
        for s in range(5):
            result = online_greedy(problem, seed=s)
            assert result.welfare <= opt + 1e-6

    def test_explicit_order_respected(self):
        problem = protocol_auction(8, 2, seed=503)
        order = list(range(7, -1, -1))
        result = online_greedy(problem, arrival_order=order)
        assert result.arrival_order == order

    def test_invalid_order_rejected(self):
        problem = protocol_auction(5, 2, seed=504)
        with pytest.raises(ValueError):
            online_greedy(problem, arrival_order=[0, 0, 1, 2, 3])

    def test_deterministic_given_order(self):
        problem = protocol_auction(10, 2, seed=505)
        order = list(range(10))
        a = online_greedy(problem, arrival_order=order)
        b = online_greedy(problem, arrival_order=order)
        assert a.allocation == b.allocation

    def test_first_arrival_always_served(self):
        # The first bidder faces no conflicts: if it has any positive bid,
        # it is granted.
        problem = protocol_auction(6, 2, seed=506)
        result = online_greedy(problem, arrival_order=list(range(6)))
        assert 0 in result.allocation

    def test_welfare_matches_allocation(self):
        problem = protocol_auction(10, 3, seed=507)
        result = online_greedy(problem, seed=2)
        assert result.welfare == pytest.approx(problem.welfare(result.allocation))


class TestAsymmetricColumnGeneration:
    def test_matches_explicit_lp(self):
        problem, _ = theorem18_auction(12, 4, 2, seed=511)
        explicit = AsymmetricAuctionLP(problem).solve()
        solution, iters, converged = solve_asymmetric_with_column_generation(problem)
        assert converged
        assert solution.value == pytest.approx(explicit.value, rel=1e-6)

    def test_with_general_valuations(self):
        from repro.core.asymmetric import AsymmetricAuctionProblem
        from repro.graphs.conflict_graph import VertexOrdering
        from repro.graphs.generators import gnp_random_graph
        from repro.valuations.generators import random_additive_valuations

        n, k = 10, 3
        graphs = [gnp_random_graph(n, 0.3, seed=512 + j) for j in range(k)]
        vals = random_additive_valuations(n, k, seed=513)
        problem = AsymmetricAuctionProblem(
            graphs, VertexOrdering.identity(n), 2.0, vals
        )
        explicit = AsymmetricAuctionLP(problem).solve()
        solution, _, converged = solve_asymmetric_with_column_generation(problem)
        assert converged
        assert solution.value == pytest.approx(explicit.value, rel=1e-6)
