"""Tests for the Lavi–Swamy mechanism (Section 5)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.auction import AuctionProblem
from repro.core.solver import SpectrumAuctionSolver
from repro.geometry.links import random_links
from repro.interference.protocol import protocol_model
from repro.mechanism.lavi_swamy import decompose_lp_solution, default_alpha
from repro.mechanism.truthful import TruthfulMechanism
from repro.mechanism.vcg import vcg_payments
from repro.valuations.explicit import XORValuation
from repro.valuations.generators import random_xor_valuations


@pytest.fixture(scope="module")
def small_setup():
    links = random_links(10, seed=81, length_range=(0.04, 0.12))
    structure = protocol_model(links, delta=1.0)
    vals = random_xor_valuations(10, 3, seed=82, bids_per_bidder=2)
    problem = AuctionProblem(structure, 3, vals)
    solution = SpectrumAuctionSolver(problem).solve_lp("explicit")
    return problem, solution


class TestDecomposition:
    def test_exact_pair_masses(self, small_setup):
        problem, solution = small_setup
        dec = decompose_lp_solution(problem, solution, seed=1)
        mass = dec.pair_mass()
        for pair, target in dec.target.items():
            assert mass[pair] == pytest.approx(target, abs=1e-7)

    def test_expected_welfare_is_scaled_lp(self, small_setup):
        problem, solution = small_setup
        dec = decompose_lp_solution(problem, solution, seed=2)
        assert dec.expected_welfare() == pytest.approx(
            solution.value / dec.alpha, rel=1e-6
        )

    def test_all_pool_allocations_feasible(self, small_setup):
        problem, solution = small_setup
        dec = decompose_lp_solution(problem, solution, seed=3)
        for alloc in dec.allocations:
            assert problem.is_feasible(alloc)

    def test_weights_form_subdistribution(self, small_setup):
        problem, solution = small_setup
        dec = decompose_lp_solution(problem, solution, seed=4)
        assert (dec.weights >= -1e-12).all()
        assert dec.weights.sum() <= 1.0 + 1e-9
        assert dec.empty_weight >= -1e-9

    def test_sampling_unbiased(self, small_setup):
        problem, solution = small_setup
        dec = decompose_lp_solution(problem, solution, seed=5)
        rng = np.random.default_rng(6)
        trials = 3000
        counts: dict = {p: 0 for p in dec.target}
        for _ in range(trials):
            alloc = dec.sample(rng)
            for v, bundle in alloc.items():
                if (v, bundle) in counts:
                    counts[(v, bundle)] += 1
        for pair, target in dec.target.items():
            if target > 0.002:
                emp = counts[pair] / trials
                assert emp == pytest.approx(target, abs=4 * np.sqrt(target / trials))

    def test_tight_alpha_exercises_pricing(self, small_setup):
        """With α far below 8√kρ the seeded pool cannot cover x*/α, so the
        pricing loop must generate real allocations.  Exact pricing makes
        any α above the instance's *pointwise* decomposition gap work —
        here that gap is 3 (note it exceeds the scalar LP/OPT ratio 1.21:
        domination must hold coordinatewise, for every weighting w ≥ 0)."""
        problem, solution = small_setup
        dec = decompose_lp_solution(
            problem, solution, alpha=3.5, seed=7, pricing="exact"
        )
        assert dec.iterations >= 2
        mass = dec.pair_mass()
        for pair, target in dec.target.items():
            assert mass[pair] == pytest.approx(target, abs=1e-6)
        for alloc in dec.allocations:
            assert problem.is_feasible(alloc)

    def test_alpha_below_gap_detected(self, small_setup):
        """Exact pricing proves infeasibility when α is below the gap
        (this instance's LP/OPT ratio is ≈ 1.21)."""
        problem, solution = small_setup
        with pytest.raises(RuntimeError, match="integrality gap"):
            decompose_lp_solution(
                problem, solution, alpha=1.05, seed=8, pricing="exact"
            )

    def test_invalid_pricing_mode(self, small_setup):
        problem, solution = small_setup
        with pytest.raises(ValueError):
            decompose_lp_solution(problem, solution, pricing="magic")


class TestDecompositionWeighted:
    """Section 5 applies verbatim to weighted graphs via Algorithms 2+3."""

    @pytest.fixture(scope="class")
    def weighted_setup(self):
        from repro.interference.physical import linear_power, physical_model_structure

        links = random_links(8, seed=83, length_range=(0.03, 0.1))
        structure = physical_model_structure(links, linear_power(links, 3.0))
        vals = random_xor_valuations(8, 2, seed=84, bids_per_bidder=2)
        problem = AuctionProblem(structure, 2, vals)
        solution = SpectrumAuctionSolver(problem).solve_lp("explicit")
        return problem, solution

    def test_weighted_decomposition_exact(self, weighted_setup):
        problem, solution = weighted_setup
        dec = decompose_lp_solution(problem, solution, seed=20)
        mass = dec.pair_mass()
        for pair, target in dec.target.items():
            assert mass[pair] == pytest.approx(target, abs=1e-7)
        for alloc in dec.allocations:
            assert problem.is_feasible(alloc)

    def test_weighted_mechanism_ir(self, weighted_setup):
        problem, _ = weighted_setup
        mech = TruthfulMechanism(problem.structure, problem.k)
        outcome = mech.run(problem.valuations, seed=21)
        assert problem.is_feasible(outcome.sampled_allocation)
        for v in range(problem.n):
            assert outcome.expected_utility(v, problem.valuations[v]) >= -1e-9


class TestDecompositionWithColumnGeneration:
    """Section 5's closing remark: arbitrary k via demand oracles; the
    decomposition never touches the original valuations."""

    def test_colgen_solution_decomposes(self):
        from repro.core.column_generation import solve_with_column_generation
        from repro.valuations.generators import random_additive_valuations

        links = random_links(10, seed=85, length_range=(0.04, 0.12))
        structure = protocol_model(links, delta=1.0)
        k = 12  # 4096 bundles: enumeration unattractive, oracles fine
        vals = random_additive_valuations(10, k, seed=86)
        problem = AuctionProblem(structure, k, vals)
        cg = solve_with_column_generation(problem)
        assert cg.converged
        dec = decompose_lp_solution(problem, cg.solution, seed=22)
        mass = dec.pair_mass()
        for pair, target in dec.target.items():
            assert mass[pair] == pytest.approx(target, abs=1e-7)


class TestVCG:
    def test_payments_nonnegative_and_ir(self, small_setup):
        problem, solution = small_setup
        alpha = default_alpha(problem)
        vcg = vcg_payments(problem, solution, alpha)
        assert (vcg.payments >= 0).all()
        # Individual rationality: expected value ≥ payment.
        for v in range(problem.n):
            expected_value = vcg.contributions[v] / alpha
            assert vcg.payments[v] <= expected_value + 1e-7

    def test_removing_bidder_weakly_decreases_lp(self, small_setup):
        problem, solution = small_setup
        vcg = vcg_payments(problem, solution, default_alpha(problem))
        assert (vcg.lp_without <= solution.value + 1e-6).all()

    def test_zero_contribution_zero_payment(self, small_setup):
        problem, solution = small_setup
        vcg = vcg_payments(problem, solution, default_alpha(problem))
        for v in range(problem.n):
            if vcg.contributions[v] == 0:
                assert vcg.payments[v] == 0


class TestTruthfulMechanism:
    def test_outcome_consistency(self, small_setup):
        problem, _ = small_setup
        mech = TruthfulMechanism(problem.structure, problem.k)
        outcome = mech.run(problem.valuations, seed=8)
        assert problem.is_feasible(outcome.sampled_allocation)
        assert outcome.lp_value > 0
        for v in range(problem.n):
            assert outcome.expected_utility(v, problem.valuations[v]) >= -1e-9

    def test_truthfulness_in_expectation(self, small_setup):
        """E[u(truth)] ≥ E[u(misreport)] for sampled misreports (exact
        expected utilities, no sampling noise)."""
        problem, _ = small_setup
        mech = TruthfulMechanism(problem.structure, problem.k)
        truthful_outcome = mech.run(problem.valuations, seed=9, sample=False)
        rng = np.random.default_rng(10)
        bidder = 2
        true_val = problem.valuations[bidder]
        u_truth = truthful_outcome.expected_utility(bidder, true_val)
        for trial in range(4):
            lied = list(problem.valuations)
            bids = {
                bundle: float(rng.integers(1, 120))
                for bundle in true_val.support()
            }
            lied[bidder] = XORValuation(problem.k, bids)
            lied_outcome = mech.run(lied, seed=11 + trial, sample=False)
            u_lie = lied_outcome.expected_utility(bidder, true_val)
            assert u_truth >= u_lie - 1e-6

    def test_overbidding_not_profitable(self, small_setup):
        problem, _ = small_setup
        mech = TruthfulMechanism(problem.structure, problem.k)
        truthful_outcome = mech.run(problem.valuations, seed=12, sample=False)
        bidder = 0
        true_val = problem.valuations[bidder]
        u_truth = truthful_outcome.expected_utility(bidder, true_val)
        exaggerated = XORValuation(
            problem.k, {b: v * 10 for b, v in true_val.bids.items()}
        )
        lied = list(problem.valuations)
        lied[bidder] = exaggerated
        out = mech.run(lied, seed=13, sample=False)
        assert u_truth >= out.expected_utility(bidder, true_val) - 1e-6
