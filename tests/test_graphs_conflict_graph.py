"""Tests for ConflictGraph and VertexOrdering."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graphs.conflict_graph import ConflictGraph, VertexOrdering
from repro.graphs.generators import clique, cycle, path


class TestVertexOrdering:
    def test_identity(self):
        o = VertexOrdering.identity(4)
        assert o.position(0) == 0 and o.position(3) == 3

    def test_perm_validation(self):
        with pytest.raises(ValueError):
            VertexOrdering([0, 0, 1])

    def test_by_key_descending(self):
        o = VertexOrdering.by_key([1.0, 3.0, 2.0], descending=True)
        assert list(o.perm) == [1, 2, 0]
        assert o.position(1) == 0

    def test_by_key_stable_ties(self):
        o = VertexOrdering.by_key([2.0, 2.0, 1.0])
        assert list(o.perm) == [2, 0, 1]

    def test_precedes(self):
        o = VertexOrdering([2, 0, 1])
        assert o.precedes(2, 0) and o.precedes(0, 1)
        assert not o.precedes(1, 2)

    def test_earlier_mask(self):
        o = VertexOrdering([2, 0, 1])
        mask = o.earlier_mask(1)  # vertices before 1: {2, 0}
        assert mask[2] and mask[0] and not mask[1]

    def test_reversed(self):
        o = VertexOrdering([2, 0, 1]).reversed()
        assert list(o.perm) == [1, 0, 2]

    def test_equality(self):
        assert VertexOrdering([0, 1]) == VertexOrdering([0, 1])
        assert VertexOrdering([0, 1]) != VertexOrdering([1, 0])


class TestConflictGraph:
    def test_basic_counts(self):
        g = ConflictGraph(4, [(0, 1), (2, 3)])
        assert g.n == 4 and g.m == 2

    def test_self_loop_rejected(self):
        with pytest.raises(ValueError):
            ConflictGraph(3, [(1, 1)])

    def test_out_of_range_edge(self):
        with pytest.raises(ValueError):
            ConflictGraph(2, [(0, 5)])

    def test_from_adjacency_requires_symmetry(self):
        a = np.zeros((2, 2), dtype=bool)
        a[0, 1] = True
        with pytest.raises(ValueError):
            ConflictGraph.from_adjacency(a)

    def test_from_adjacency_rejects_diagonal(self):
        a = np.eye(2, dtype=bool)
        with pytest.raises(ValueError):
            ConflictGraph.from_adjacency(a)

    def test_neighbors_and_degree(self):
        g = path(4)  # 0-1-2-3
        assert list(g.neighbors(1)) == [0, 2]
        assert g.degree(0) == 1 and g.degree(1) == 2
        assert g.max_degree() == 2
        assert g.average_degree() == pytest.approx(1.5)

    def test_edges_iteration(self):
        g = cycle(4)
        assert sorted(g.edges()) == [(0, 1), (0, 3), (1, 2), (2, 3)]

    def test_is_independent(self):
        g = path(4)
        assert g.is_independent([0, 2])
        assert g.is_independent([0, 3])
        assert not g.is_independent([0, 1])
        assert g.is_independent([])
        assert g.is_independent([2])

    def test_is_independent_rejects_duplicates(self):
        g = path(3)
        with pytest.raises(ValueError):
            g.is_independent([0, 0])

    def test_backward_neighbors(self):
        g = path(4)
        o = VertexOrdering([3, 2, 1, 0])  # π: 3 first
        assert list(g.backward_neighbors(1, o)) == [2]
        assert list(g.backward_neighbors(3, o)) == []

    def test_subgraph(self):
        g = cycle(5)
        sub, idx = g.subgraph([0, 1, 3])
        assert sub.n == 3
        assert sub.has_edge(0, 1)  # 0-1 edge survives
        assert not sub.has_edge(1, 2)  # 1 and 3 not adjacent in C5
        assert list(idx) == [0, 1, 3]

    def test_complement(self):
        g = clique(4).complement()
        assert g.m == 0
        g2 = ConflictGraph(3).complement()
        assert g2.m == 3

    def test_to_networkx(self):
        g = cycle(5)
        nx_g = g.to_networkx()
        assert nx_g.number_of_nodes() == 5
        assert nx_g.number_of_edges() == 5
