"""Tests for the physical (SINR) model and power control."""

from __future__ import annotations

import numpy as np
import pytest

from repro.geometry.links import links_from_arrays, random_links
from repro.graphs.independence import greedy_weighted_independent_set
from repro.interference.physical import (
    PhysicalModel,
    is_monotone_power,
    linear_power,
    mean_power,
    physical_model_structure,
    uniform_power,
)
from repro.interference.power_control import (
    kesselheim_power_assignment,
    min_power_assignment,
    power_control_structure,
    tau_constant,
    theorem17_weight_matrix,
)

ALPHA, BETA = 3.0, 1.5


@pytest.fixture(scope="module")
def links():
    return random_links(20, seed=21, length_range=(0.02, 0.08))


@pytest.fixture(scope="module")
def model(links):
    return PhysicalModel(links, ALPHA, BETA, noise=0.0)


class TestPhysicalModel:
    def test_parameter_validation(self, links):
        with pytest.raises(ValueError):
            PhysicalModel(links, alpha=-1.0)
        with pytest.raises(ValueError):
            PhysicalModel(links, beta=0.0)
        with pytest.raises(ValueError):
            PhysicalModel(links, noise=-0.5)

    def test_sinr_single_link(self, model, links):
        p = uniform_power(links)
        assert model.is_feasible([3], p)

    def test_sinr_decreases_with_more_links(self, model, links):
        p = linear_power(links, ALPHA)
        members = np.array([0, 1, 2, 3, 4])
        solo = model.sinr(np.array([0]), p)
        crowd_sinr = model.sinr(members, p)[0]
        # Interference can only lower link 0's SINR (solo SINR is infinite
        # at zero noise, represented as inf).
        assert np.isinf(solo[0]) or crowd_sinr <= solo[0]

    def test_two_overlapping_links_infeasible(self):
        # Receiver of link 0 sits right next to sender of link 1.
        ls = links_from_arrays(
            np.array([[0.0, 0.0], [0.11, 0.0]]),
            np.array([[0.1, 0.0], [0.21, 0.0]]),
        )
        m = PhysicalModel(ls, ALPHA, BETA)
        assert not m.is_feasible([0, 1], uniform_power(ls))

    def test_power_schemes_monotone(self, links):
        assert is_monotone_power(links, uniform_power(links), ALPHA)
        assert is_monotone_power(links, linear_power(links, ALPHA), ALPHA)
        assert is_monotone_power(links, mean_power(links, ALPHA), ALPHA)

    def test_non_monotone_detected(self, links):
        p = linear_power(links, ALPHA)
        longest = int(np.argmax(links.lengths))
        p[longest] = p.min() / 2  # longest link now has the least power
        assert not is_monotone_power(links, p, ALPHA)

    def test_weight_matrix_diagonal_zero(self, model, links):
        w = model.weight_matrix(linear_power(links, ALPHA))
        assert np.allclose(np.diagonal(w), 0)
        assert (w >= 0).all() and (w <= 1).all()

    def test_positive_power_required(self, model, links):
        p = uniform_power(links)
        p[0] = 0.0
        with pytest.raises(ValueError):
            model.weight_matrix(p)


class TestSINREquivalence:
    """Proposition 15: SINR feasibility ⟺ weighted-graph independence."""

    @pytest.mark.parametrize("scheme", ["uniform", "linear", "mean"])
    def test_equivalence_random_subsets(self, links, scheme):
        p = {
            "uniform": uniform_power(links),
            "linear": linear_power(links, ALPHA),
            "mean": mean_power(links, ALPHA),
        }[scheme]
        m = PhysicalModel(links, ALPHA, BETA, noise=0.0)
        wg = m.weighted_graph(p)
        rng = np.random.default_rng(22)
        for _ in range(200):
            size = int(rng.integers(1, 7))
            members = rng.choice(links.n, size=size, replace=False)
            assert m.is_feasible(members, p) == wg.is_independent(members)

    def test_equivalence_with_noise(self, links):
        p = linear_power(links, ALPHA)
        noise = 0.1 * float((p / links.lengths**ALPHA).min()) / BETA
        m = PhysicalModel(links, ALPHA, BETA, noise=noise)
        wg = m.weighted_graph(p)
        rng = np.random.default_rng(23)
        for _ in range(100):
            size = int(rng.integers(1, 6))
            members = rng.choice(links.n, size=size, replace=False)
            assert m.is_feasible(members, p) == wg.is_independent(members)


class TestPhysicalStructure:
    def test_rho_measured(self, links):
        st = physical_model_structure(links, linear_power(links, ALPHA))
        assert st.rho >= 1.0
        assert st.metadata["model"] == "physical"

    def test_rho_override(self, links):
        st = physical_model_structure(links, uniform_power(links), rho=7.5)
        assert st.rho == 7.5 and st.rho_source == "caller-supplied"


class TestPowerControl:
    def test_tau_value(self):
        assert tau_constant(3.0, 1.5) == pytest.approx(1.0 / (2 * 27 * 8))

    def test_weight_matrix_directional(self, links):
        w, pi = theorem17_weight_matrix(links, ALPHA, BETA)
        pos = pi.pos
        nz = np.argwhere(w > 0)
        assert all(pos[u] < pos[v] for u, v in nz)

    def test_clip_preserves_independence_family(self, links):
        from repro.graphs.weighted_graph import WeightedConflictGraph

        w_raw, _ = theorem17_weight_matrix(links, ALPHA, BETA, clip=False)
        w_clip, _ = theorem17_weight_matrix(links, ALPHA, BETA, clip=True)
        g_raw = WeightedConflictGraph(w_raw)
        g_clip = WeightedConflictGraph(w_clip)
        rng = np.random.default_rng(24)
        for _ in range(200):
            size = int(rng.integers(1, 6))
            members = rng.choice(links.n, size=size, replace=False)
            assert g_raw.is_independent(members) == g_clip.is_independent(members)

    def test_clipped_rho_much_smaller(self, links):
        raw = power_control_structure(links, clip=False)
        clipped = power_control_structure(links, clip=True)
        assert clipped.rho < raw.rho

    def test_independent_sets_admit_kesselheim_powers(self, links):
        st = power_control_structure(links)
        m = PhysicalModel(links, ALPHA, BETA, noise=0.0)
        members, _ = greedy_weighted_independent_set(st.graph, np.ones(links.n))
        assert len(members) >= 2
        powers = kesselheim_power_assignment(links, members, ALPHA, BETA)
        assert m.is_feasible(members, powers)

    def test_kesselheim_with_noise(self, links):
        st = power_control_structure(links)
        members, _ = greedy_weighted_independent_set(st.graph, np.ones(links.n))
        noise = 1e-3
        m = PhysicalModel(links, ALPHA, BETA, noise=noise)
        powers = kesselheim_power_assignment(links, members, ALPHA, BETA, noise)
        assert m.is_feasible(members, powers)

    def test_kesselheim_empty_and_single(self, links):
        p = kesselheim_power_assignment(links, [], ALPHA, BETA)
        assert (p == 0).all()
        p1 = kesselheim_power_assignment(links, [4], ALPHA, BETA)
        assert p1[4] > 0 and np.count_nonzero(p1) == 1

    def test_min_power_oracle_agrees_with_kesselheim_sets(self, links):
        st = power_control_structure(links)
        m = PhysicalModel(links, ALPHA, BETA, noise=0.0)
        members, _ = greedy_weighted_independent_set(st.graph, np.ones(links.n))
        feasible, powers = min_power_assignment(links, members, ALPHA, BETA)
        assert feasible
        assert m.is_feasible(members, powers)

    def test_min_power_detects_infeasible(self):
        # Two links whose receivers sit on top of the other's sender cannot
        # both meet an SINR threshold β ≥ 1 under any powers.
        ls = links_from_arrays(
            np.array([[0.0, 0.0], [0.1, 0.01]]),
            np.array([[0.1, 0.0], [0.0, 0.01]]),
        )
        feasible, _ = min_power_assignment(ls, [0, 1], ALPHA, BETA)
        assert not feasible

    def test_min_power_single_member(self, links):
        feasible, powers = min_power_assignment(links, [2], ALPHA, BETA, noise=0.1)
        assert feasible and powers[2] > 0
