"""Wire schema: exact round trips, typed errors, versioning, deprecation."""

from __future__ import annotations

import json
import math

import numpy as np
import pytest

from repro.core.result import SolverResult
from repro.service import errors as errors_module
from repro.service.errors import (
    DeadlineExceeded,
    InjectedFaultError,
    ServiceFaultError,
    ShedError,
)
from repro.service.pool import WorkerCrashError
from repro.service.wire import (
    SCHEMA_VERSION,
    WIRE_ERROR_CODES,
    AuctionRequest,
    AuctionResponse,
    decode_valuation,
    default_idempotency_key,
    encode_valuation,
    error_from_wire,
    error_to_wire,
    http_status_for,
    request_from_wire,
    request_to_wire,
)
from repro.valuations.explicit import XORValuation


def make_valuations():
    # deliberately unsorted bid order: the wire must preserve it exactly
    return [
        XORValuation(
            3,
            {
                frozenset({2, 0}): 5.0,
                frozenset({1}): 3.5,
                frozenset({0}): 1.25,
            },
        ),
        XORValuation(3, {frozenset({1, 2}): 7.0, frozenset({0, 1}): 2.0}),
    ]


def make_request(**overrides):
    options = dict(
        scene_id="a" * 16,
        k=3,
        valuations=make_valuations(),
        seed=7,
        profile_key="renewal:42",
        mode="allocate",
        deadline=0.75,
        metadata={"tenant": "metro-east"},
    )
    options.update(overrides)
    return AuctionRequest(**options)


def make_response(**overrides):
    options = dict(
        allocation={0: frozenset({2, 0}), 1: frozenset({1})},
        welfare=8.5,
        lp_value=9.25,
        feasible=True,
        guarantee=48.0,
        rounds_algorithm3=2,
        lp_iterations=3,
        channel_powers={0: np.array([0.5, 0.25]), 2: np.array([1.0])},
        sinr_feasible=True,
        details={"batched": True},
        scene_id="a" * 16,
        seed=7,
        timing={"solve_seconds": 0.012},
    )
    options.update(overrides)
    return AuctionResponse(**options)


RESPONSE_SHAPES = {
    "success": make_response(),
    "degraded": make_response(
        guarantee=float("inf"),
        details={"degraded": True, "fallback": "greedy"},
    ),
    "empty-allocation": make_response(
        allocation={}, welfare=0.0, channel_powers={}, sinr_feasible=None
    ),
    "non-finite": make_response(
        lp_value=float("inf"),
        guarantee=float("nan"),
        channel_powers={1: np.array([float("inf"), 0.0])},
    ),
}


class TestRequestRoundTrip:
    def test_round_trip_is_exact(self):
        request = make_request()
        decoded = request_from_wire(request_to_wire(request))
        assert decoded.scene_id == request.scene_id
        assert decoded.k == request.k
        assert decoded.seed == request.seed
        assert decoded.profile_key == request.profile_key
        assert decoded.mode == request.mode
        assert decoded.deadline == request.deadline
        assert decoded.metadata == request.metadata
        assert decoded.idempotency_key == request.idempotency_key
        assert [encode_valuation(v) for v in decoded.valuations] == [
            encode_valuation(v) for v in request.valuations
        ]

    def test_bid_order_is_preserved(self):
        [valuation, _] = make_valuations()
        encoded = encode_valuation(valuation)
        assert encoded["bids"] == [[[0, 2], 5.0], [[1], 3.5], [[0], 1.25]]
        redecoded = encode_valuation(decode_valuation(encoded))
        assert redecoded == encoded

    def test_optional_fields_default(self):
        wire = {
            "schema_version": SCHEMA_VERSION,
            "scene_id": "b" * 16,
            "k": 2,
            "valuations": [encode_valuation(make_valuations()[0])],
        }
        decoded = request_from_wire(wire)
        assert decoded.seed is None
        assert decoded.profile_key is None
        assert decoded.mode == "allocate"
        assert decoded.deadline is None
        assert decoded.metadata == {}
        assert decoded.idempotency_key is None  # additive: old payloads decode

    def test_unknown_schema_version_rejected(self):
        wire = request_to_wire(make_request())
        wire["schema_version"] = SCHEMA_VERSION + 1
        with pytest.raises(ValueError, match="schema_version"):
            request_from_wire(wire)

    def test_survives_sort_keys_reserialization(self):
        wire = request_to_wire(make_request())
        resorted = json.loads(json.dumps(wire, sort_keys=True))
        assert request_to_wire(request_from_wire(resorted)) == wire

    def test_idempotency_key_round_trips(self):
        request = make_request(idempotency_key="renewal:42:7")
        wire = request_to_wire(request)
        assert wire["idempotency_key"] == "renewal:42:7"
        assert request_from_wire(wire).idempotency_key == "renewal:42:7"


class TestIdempotencyKeyDerivation:
    def test_deterministic_across_calls_and_instances(self):
        assert default_idempotency_key(make_request()) == default_idempotency_key(
            make_request()
        )

    def test_sensitive_to_the_result_coordinates(self):
        base = default_idempotency_key(make_request())
        assert default_idempotency_key(make_request(seed=8)) != base
        assert default_idempotency_key(make_request(scene_id="b" * 16)) != base
        assert default_idempotency_key(make_request(profile_key="other")) != base
        assert default_idempotency_key(make_request(mode="truthful")) != base

    def test_insensitive_to_serving_hints(self):
        base = default_idempotency_key(make_request())
        assert default_idempotency_key(make_request(deadline=None)) == base
        assert (
            default_idempotency_key(make_request(metadata={"trace": "x"})) == base
        )

    def test_profileless_requests_fold_in_the_valuations(self):
        """Two one-off profiles sharing a seed must not collide."""
        a = make_request(profile_key=None)
        b = make_request(profile_key=None, valuations=make_valuations()[:1])
        assert default_idempotency_key(a) != default_idempotency_key(b)
        # and the derivation stays deterministic for the profileless form
        assert default_idempotency_key(a) == default_idempotency_key(
            make_request(profile_key=None)
        )


class TestResponseRoundTrip:
    @pytest.mark.parametrize("shape", sorted(RESPONSE_SHAPES))
    def test_round_trip_is_bit_identical(self, shape):
        response = RESPONSE_SHAPES[shape]
        decoded = AuctionResponse.from_json(response.to_json())
        # wire-dict identity covers every field exactly (floats via repr,
        # numpy powers element-wise); ndarray values make full dataclass
        # equality unusable here, the wire form is the canonical comparison
        assert decoded.to_wire() == response.to_wire()
        assert decoded.scene_id == response.scene_id
        assert decoded.seed == response.seed
        assert decoded.timing == response.timing

    @pytest.mark.parametrize("shape", sorted(RESPONSE_SHAPES))
    def test_survives_sort_keys_reserialization(self, shape):
        response = RESPONSE_SHAPES[shape]
        resorted = json.loads(json.dumps(response.to_wire(), sort_keys=True))
        assert AuctionResponse.from_wire(resorted).to_wire() == response.to_wire()

    def test_non_finite_floats_cross_as_json_strings(self):
        payload = RESPONSE_SHAPES["non-finite"].to_json()
        data = json.loads(payload)  # strict JSON: no bare Infinity/NaN
        assert data["lp_value"] == "inf"
        assert data["guarantee"] == "nan"
        decoded = AuctionResponse.from_json(payload)
        assert math.isinf(decoded.lp_value)
        assert math.isnan(decoded.guarantee)

    def test_json_form_is_a_string_round_trip(self):
        response = RESPONSE_SHAPES["success"]
        assert json.loads(response.to_json()) == response.to_wire()

    def test_unknown_schema_version_rejected(self):
        wire = RESPONSE_SHAPES["success"].to_wire()
        wire["schema_version"] = SCHEMA_VERSION + 1
        with pytest.raises(ValueError, match="schema_version"):
            AuctionResponse.from_wire(wire)

    def test_error_payload_rejected_by_from_wire(self):
        with pytest.raises(ValueError, match="status"):
            AuctionResponse.from_wire(error_to_wire(ShedError("full")))

    def test_is_a_solver_result(self):
        assert isinstance(RESPONSE_SHAPES["success"], SolverResult)

    def test_equality_ignores_timing(self):
        a = make_response(timing={"solve_seconds": 0.5})
        b = make_response(timing={"solve_seconds": 0.001})
        a.channel_powers = b.channel_powers = {}
        assert a == b


class TestResultShim:
    def test_from_result_wraps_bare_results(self):
        bare = SolverResult(
            allocation={0: frozenset({1})},
            welfare=3.5,
            lp_value=4.0,
            feasible=True,
            guarantee=48.0,
        )
        wrapped = AuctionResponse.from_result(
            bare, scene_id="c" * 16, seed=9, timing={"solve_seconds": 0.01}
        )
        assert wrapped.allocation == bare.allocation
        assert wrapped.scene_id == "c" * 16
        assert wrapped.seed == 9

    def test_from_result_merges_existing_envelope(self):
        response = make_response(channel_powers={})
        merged = AuctionResponse.from_result(
            response, scene_id="ignored", seed=None, timing={"queue_seconds": 0.2}
        )
        assert merged is response
        assert merged.scene_id == "a" * 16  # original envelope wins
        assert merged.timing == {"solve_seconds": 0.012, "queue_seconds": 0.2}

    def test_as_solver_result_shim_is_gone(self):
        """PR 9 deprecated the downcast shim for exactly one cycle; the
        attribute must no longer exist (an AuctionResponse *is* a
        SolverResult — use it directly)."""
        response = make_response(channel_powers={})
        assert not hasattr(response, "as_solver_result")
        assert not hasattr(AuctionResponse, "as_solver_result")
        assert isinstance(response, SolverResult)


def all_typed_errors():
    """Every public exception type in service/errors.py, plus the pool's."""
    from_module = [
        obj
        for name in errors_module.__all__
        if isinstance(obj := getattr(errors_module, name), type)
        and issubclass(obj, BaseException)
    ]
    return from_module + [WorkerCrashError]


class TestErrorRoundTrip:
    @pytest.mark.parametrize(
        "exc_type", all_typed_errors(), ids=lambda t: t.__name__
    )
    def test_every_errors_type_round_trips_exactly(self, exc_type):
        exc = exc_type("the queue is full (12 waiting)")
        wire = error_to_wire(exc)
        assert wire["status"] == "error"
        decoded = error_from_wire(wire)
        assert type(decoded) is exc_type
        assert str(decoded) == str(exc)

    def test_every_errors_type_is_in_the_code_table(self):
        tabled = {exc_type for exc_type, _ in WIRE_ERROR_CODES.values()}
        for exc_type in all_typed_errors():
            assert exc_type in tabled, f"{exc_type.__name__} has no wire code"

    @pytest.mark.parametrize(
        "exc_type", all_typed_errors(), ids=lambda t: t.__name__
    )
    def test_round_trip_survives_sort_keys(self, exc_type):
        wire = error_to_wire(exc_type("boom"))
        resorted = json.loads(json.dumps(wire, sort_keys=True))
        assert type(error_from_wire(resorted)) is exc_type

    def test_http_status_map_is_pinned(self):
        assert http_status_for("shed") == 503
        assert http_status_for("deadline-exceeded") == 504
        assert http_status_for("worker-crash") == 502
        assert http_status_for("injected-fault") == 500
        assert http_status_for("service-fault") == 500
        assert http_status_for("bad-request") == 400
        assert http_status_for("unknown-scene") == 404
        assert http_status_for("not-found") == 404
        assert http_status_for("internal") == 500
        assert http_status_for("never-heard-of-it") == 500

    def test_subclasses_do_not_collapse_into_their_base(self):
        # ShedError/DeadlineExceeded/InjectedFaultError subclass
        # ServiceFaultError; exact-type matching must keep them distinct
        assert error_to_wire(ShedError("x"))["error_code"] == "shed"
        assert (
            error_to_wire(DeadlineExceeded("x"))["error_code"]
            == "deadline-exceeded"
        )
        assert (
            error_to_wire(InjectedFaultError("x"))["error_code"]
            == "injected-fault"
        )
        assert (
            error_to_wire(ServiceFaultError("x"))["error_code"] == "service-fault"
        )

    def test_untyped_exceptions_become_internal(self):
        wire = error_to_wire(ZeroDivisionError("1/0"))
        assert wire["error_code"] == "internal"
        decoded = error_from_wire(wire)
        assert isinstance(decoded, RuntimeError)

    def test_gateway_codes_reconstruct_callsite_shapes(self):
        unknown = error_from_wire(
            {
                "schema_version": SCHEMA_VERSION,
                "status": "error",
                "error_code": "unknown-scene",
                "message": "no scene deadbeef",
            }
        )
        assert isinstance(unknown, KeyError)
        bad = error_from_wire(
            {
                "schema_version": SCHEMA_VERSION,
                "status": "error",
                "error_code": "bad-request",
                "message": "k must be positive",
            }
        )
        assert isinstance(bad, ValueError)

    def test_unknown_schema_version_rejected(self):
        wire = error_to_wire(ShedError("x"))
        wire["schema_version"] = SCHEMA_VERSION + 1
        with pytest.raises(ValueError, match="schema_version"):
            error_from_wire(wire)
