"""Tests for the AuctionProblem contract, including the paper's headline
"no restrictions on valuations, not even monotonicity" claim."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.auction import AuctionProblem, social_welfare
from repro.core.auction_lp import AuctionLP
from repro.core.derandomize import derandomize_rounding
from repro.core.exact import solve_exact
from repro.core.rounding import round_unweighted
from repro.graphs.conflict_graph import ConflictGraph, VertexOrdering
from repro.interference.base import ConflictStructure
from repro.valuations.explicit import ExplicitValuation, XORValuation
from repro.valuations.generators import random_xor_valuations


def make_structure(n=4, edges=((0, 1), (2, 3)), rho=1.0):
    return ConflictStructure(
        ConflictGraph(n, list(edges)), VertexOrdering.identity(n), rho
    )


class TestAuctionProblemValidation:
    def test_valuation_count_mismatch(self):
        with pytest.raises(ValueError):
            AuctionProblem(make_structure(), 2, random_xor_valuations(3, 2, seed=1))

    def test_valuation_k_mismatch(self):
        vals = random_xor_valuations(4, 3, seed=2)
        with pytest.raises(ValueError):
            AuctionProblem(make_structure(), 2, vals)

    def test_k_positive(self):
        with pytest.raises(ValueError):
            AuctionProblem(make_structure(), 0, [])

    def test_properties(self):
        vals = random_xor_valuations(4, 2, seed=3)
        p = AuctionProblem(make_structure(), 2, vals)
        assert p.n == 4 and not p.is_weighted
        assert p.rho == 1.0


class TestSocialWelfare:
    def test_sums_allocated_values(self):
        vals = [XORValuation(2, {frozenset({0}): float(i + 1)}) for i in range(3)]
        alloc = {0: frozenset({0}), 2: frozenset({0})}
        assert social_welfare(vals, alloc) == 4.0

    def test_empty_bundles_ignored(self):
        vals = [XORValuation(2, {frozenset({0}): 5.0})]
        assert social_welfare(vals, {0: frozenset()}) == 0.0


class TestApproximationBound:
    def test_unweighted_formula(self):
        p = AuctionProblem(make_structure(rho=3.0), 4, random_xor_valuations(4, 4, seed=4))
        assert p.approximation_bound() == pytest.approx(8.0 * 2.0 * 3.0)

    def test_weighted_adds_log_factor(self, weighted_problem):
        k, rho, n = weighted_problem.k, weighted_problem.rho, weighted_problem.n
        expected = 16.0 * math.sqrt(k) * rho * math.ceil(math.log2(n))
        assert weighted_problem.approximation_bound() == pytest.approx(expected)


class TestNonMonotoneValuations:
    """The paper's generality claim: b_{v,T} needs no structure at all —
    a bundle's supersets may be worth nothing."""

    def make_problem(self):
        k = 3
        # Bidder 0 wants EXACTLY {0,1}; {0,1,2} is worth 0 (hardware cannot
        # aggregate a third channel, say).  Bidder 1 wants exactly {2}.
        vals = [
            ExplicitValuation(k, {frozenset({0, 1}): 10.0}),
            ExplicitValuation(k, {frozenset({2}): 4.0}),
            ExplicitValuation(k, {frozenset({0}): 3.0, frozenset({0, 1, 2}): 1.0}),
        ]
        structure = ConflictStructure(
            ConflictGraph(3, [(0, 2)]), VertexOrdering.identity(3), 1.0
        )
        return AuctionProblem(structure, k, vals)

    def test_exact_respects_exact_bundles(self):
        problem = self.make_problem()
        result = solve_exact(problem)
        # OPT: bidder 0 gets {0,1} (10), bidder 1 gets {2} (4) = 14;
        # bidder 2 conflicts with 0 on any shared channel.
        assert result.value == pytest.approx(14.0)
        assert result.allocation[0] == frozenset({0, 1})

    def test_rounding_never_allocates_supersets(self):
        problem = self.make_problem()
        lp = AuctionLP(problem).solve()
        rng = np.random.default_rng(5)
        for _ in range(30):
            alloc, _ = round_unweighted(problem, lp, rng)
            for v, bundle in alloc.items():
                # Only bundles with positive declared value are allocated.
                assert problem.valuations[v].value(bundle) > 0

    def test_derandomized_on_non_monotone(self):
        problem = self.make_problem()
        lp = AuctionLP(problem).solve()
        out = derandomize_rounding(problem, lp)
        assert problem.is_feasible(out.allocation)
        bound = lp.value / problem.approximation_bound()
        assert problem.welfare(out.allocation) >= bound - 1e-9


class TestSingleChannelReduction:
    """k = 1 reduces Problem 1 to maximum-weight independent set."""

    def test_pipeline_on_k1(self):
        rng = np.random.default_rng(6)
        graph = ConflictGraph(8, [(0, 1), (1, 2), (3, 4), (5, 6), (6, 7)])
        profits = rng.integers(1, 20, size=8).astype(float)
        vals = [XORValuation(1, {frozenset({0}): float(p)}) for p in profits]
        structure = ConflictStructure(graph, VertexOrdering.identity(8), 2.0)
        problem = AuctionProblem(structure, 1, vals)
        from repro.graphs.independence import max_weight_independent_set

        _, mwis = max_weight_independent_set(graph, profits)
        exact = solve_exact(problem)
        assert exact.value == pytest.approx(mwis)
        lp = AuctionLP(problem).solve()
        assert lp.value >= mwis - 1e-6
        out = derandomize_rounding(problem, lp)
        assert problem.is_feasible(out.allocation)
