"""Tests for Algorithm 3 (Lemma 8)."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.auction import AuctionProblem
from repro.core.auction_lp import AuctionLP
from repro.core.conflict_resolution import check_condition5, make_fully_feasible
from repro.core.rounding import round_weighted
from repro.graphs.conflict_graph import VertexOrdering
from repro.graphs.weighted_graph import WeightedConflictGraph
from repro.interference.base import WeightedConflictStructure
from repro.valuations.explicit import XORValuation


def weighted_problem_from_matrix(w, k=1, values=None):
    n = w.shape[0]
    structure = WeightedConflictStructure(
        WeightedConflictGraph(w), VertexOrdering.identity(n), rho=1.0
    )
    vals = [
        XORValuation(k, {frozenset(range(k)): float(values[i] if values is not None else 1.0)})
        for i in range(n)
    ]
    return AuctionProblem(structure, k, vals)


class TestCheckCondition5:
    def test_detects_violation(self):
        w = np.zeros((2, 2))
        w[0, 1] = 0.6
        problem = weighted_problem_from_matrix(w)
        alloc = {0: frozenset({0}), 1: frozenset({0})}
        assert not check_condition5(problem, alloc)

    def test_passes_below_half(self):
        w = np.zeros((2, 2))
        w[0, 1] = 0.3
        problem = weighted_problem_from_matrix(w)
        alloc = {0: frozenset({0}), 1: frozenset({0})}
        assert check_condition5(problem, alloc)


class TestMakeFullyFeasible:
    def test_rejects_unweighted(self, protocol_problem):
        with pytest.raises(ValueError):
            make_fully_feasible(protocol_problem, {})

    def test_rejects_condition5_violation(self):
        w = np.zeros((2, 2))
        w[0, 1] = 0.9
        problem = weighted_problem_from_matrix(w)
        with pytest.raises(ValueError):
            make_fully_feasible(
                problem, {0: frozenset({0}), 1: frozenset({0})}
            )

    def test_already_feasible_passthrough(self):
        w = np.zeros((3, 3))
        w[0, 1] = 0.3  # total incoming below 1 everywhere
        problem = weighted_problem_from_matrix(w)
        alloc = {v: frozenset({0}) for v in range(3)}
        result = make_fully_feasible(problem, alloc)
        assert result.allocation == alloc
        assert result.rounds == 1
        assert problem.is_feasible(result.allocation)

    def test_splits_overloaded_group(self):
        # Star: center 0 is π-first; leaves 1..4 each send w(leaf, 0) = 0.3
        # toward it.  Condition (5) holds (each leaf's backward w̄ is 0.3,
        # the center has no backward vertices), but the center receives
        # 1.2 ≥ 1 — not fully feasible.  Algorithm 3 must finalize the
        # leaves in round 1 and give the center its own candidate.
        w = np.zeros((5, 5))
        for leaf in range(1, 5):
            w[leaf, 0] = 0.3
        problem = weighted_problem_from_matrix(w)
        alloc = {v: frozenset({0}) for v in range(5)}
        assert check_condition5(problem, alloc)
        assert not problem.is_feasible(alloc)
        result = make_fully_feasible(problem, alloc)
        assert result.rounds == 2
        assert len(result.candidates[0]) == 4  # the leaves
        assert set(result.candidates[1]) == {0}  # the center alone
        assert problem.is_feasible(result.allocation)
        assert result.best_value == pytest.approx(4.0)

    def test_candidate_count_within_log_bound(self, weighted_problem, rng):
        lp = AuctionLP(weighted_problem).solve()
        for seed in range(5):
            alloc, _ = round_weighted(
                weighted_problem, lp, np.random.default_rng(seed)
            )
            result = make_fully_feasible(weighted_problem, alloc)
            n_alloc = max(2, len([v for v, s in alloc.items() if s]))
            assert result.rounds <= math.ceil(math.log2(n_alloc)) + 1
            assert weighted_problem.is_feasible(result.allocation)

    def test_value_preserved_across_candidates(self, weighted_problem, rng):
        lp = AuctionLP(weighted_problem).solve()
        alloc, _ = round_weighted(weighted_problem, lp, rng)
        result = make_fully_feasible(weighted_problem, alloc)
        # Candidates partition the input bundles: values sum to the input.
        assert sum(result.candidate_values) == pytest.approx(
            result.input_value, rel=1e-9
        )

    def test_best_candidate_meets_log_bound(self, weighted_problem):
        lp = AuctionLP(weighted_problem).solve()
        for seed in range(5):
            alloc, _ = round_weighted(
                weighted_problem, lp, np.random.default_rng(seed + 50)
            )
            if not alloc:
                continue
            result = make_fully_feasible(weighted_problem, alloc)
            n_alloc = max(2, len(alloc))
            bound = result.input_value / math.ceil(math.log2(n_alloc))
            assert result.best_value >= bound - 1e-9

    def test_empty_allocation(self, weighted_problem):
        result = make_fully_feasible(weighted_problem, {})
        assert result.allocation == {}
        assert result.rounds == 0


def _seed_check_condition5(problem, allocation):
    """The seed-era dict-scan Condition (5) check (parity anchor)."""
    from repro.core.conflict_resolution import _wbar_lookup

    index, wbar = _wbar_lookup(problem, allocation)
    pos = problem.ordering.pos
    items = sorted(
        ((v, s) for v, s in allocation.items() if s), key=lambda vs: pos[vs[0]]
    )
    for i, (v, sv) in enumerate(items):
        total = sum(wbar[index[u], index[v]] for u, su in items[:i] if su & sv)
        if total >= 0.5:
            return False
    return True


def _seed_make_fully_feasible(problem, allocation):
    """The seed-era Algorithm 3 rounds (parity anchor); returns
    (best, candidates, rounds)."""
    from repro.core.conflict_resolution import _wbar_lookup

    index, wbar = _wbar_lookup(problem, allocation)
    pos = problem.ordering.pos
    pending = {v for v, s in allocation.items() if s}
    values = {v: problem.valuations[v].value(allocation[v]) for v in pending}
    candidates, candidate_values, rounds = [], [], 0
    while pending:
        rounds += 1
        current = {v: allocation[v] for v in pending}
        for v in sorted(pending, key=lambda u: pos[u], reverse=True):
            bundle = current.get(v)
            if not bundle:
                continue
            total = sum(
                wbar[index[u], index[v]]
                for u, su in current.items()
                if u != v and su and su & bundle
            )
            if total < 1.0:
                pending.discard(v)
            else:
                del current[v]
        candidates.append(current)
        candidate_values.append(sum(values[v] for v in current))
    best_idx = max(
        range(len(candidates)), key=lambda i: candidate_values[i], default=-1
    )
    return (candidates[best_idx] if best_idx >= 0 else {}), candidates, rounds


class TestVectorizedAlgorithm3Parity:
    """The PR 5 array kernels must reproduce the seed dict scans."""

    def test_condition5_matches_seed_scan(self, weighted_problem):
        lp = AuctionLP(weighted_problem).solve()
        for seed in range(8):
            alloc, _ = round_weighted(
                weighted_problem, lp, np.random.default_rng(seed)
            )
            assert check_condition5(weighted_problem, alloc) == (
                _seed_check_condition5(weighted_problem, alloc)
            )

    def test_rounds_match_seed_scan(self, weighted_problem):
        lp = AuctionLP(weighted_problem).solve()
        for seed in range(8):
            alloc, _ = round_weighted(
                weighted_problem, lp, np.random.default_rng(seed)
            )
            if not _seed_check_condition5(weighted_problem, alloc):
                continue
            best, candidates, rounds = _seed_make_fully_feasible(
                weighted_problem, dict(alloc)
            )
            result = make_fully_feasible(weighted_problem, dict(alloc))
            assert result.allocation == best
            assert result.candidates == candidates
            assert result.rounds == rounds

    def test_overloaded_star_matches_seed_scan(self):
        # multi-round case: center receives 1.2 total, leaves finalize first
        w = np.zeros((6, 6))
        for leaf in range(1, 6):
            w[leaf, 0] = 0.24
        problem = weighted_problem_from_matrix(w)
        alloc = {v: frozenset({0}) for v in range(6)}
        best, candidates, rounds = _seed_make_fully_feasible(problem, dict(alloc))
        result = make_fully_feasible(problem, dict(alloc))
        assert rounds == 2 and result.rounds == 2
        assert result.candidates == candidates
        assert result.allocation == best
