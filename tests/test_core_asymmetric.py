"""Tests for asymmetric channels (Section 6, Theorem 18)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.asymmetric import (
    AsymmetricAuctionLP,
    AsymmetricAuctionProblem,
    round_asymmetric,
)
from repro.graphs.conflict_graph import ConflictGraph, VertexOrdering
from repro.graphs.generators import (
    gnp_random_graph,
    random_regular_graph,
    theorem18_edge_partition,
)
from repro.graphs.independence import max_weight_independent_set
from repro.valuations.generators import (
    all_or_nothing_valuations,
    random_xor_valuations,
)


def theorem18_problem(n=14, d=4, k=2, seed=61):
    base = random_regular_graph(n, d, seed=seed)
    ordering = VertexOrdering.identity(n)
    graphs = theorem18_edge_partition(base, k, ordering)
    rho = max(1, d // k)
    vals = all_or_nothing_valuations(n, k)
    problem = AsymmetricAuctionProblem(graphs, ordering, rho, vals)
    return problem, base


class TestAsymmetricProblem:
    def test_validation(self):
        g1 = ConflictGraph(3)
        g2 = ConflictGraph(4)
        with pytest.raises(ValueError):
            AsymmetricAuctionProblem(
                [g1, g2], VertexOrdering.identity(3), 1.0, []
            )

    def test_feasibility_per_channel(self):
        g0 = ConflictGraph(2, [(0, 1)])
        g1 = ConflictGraph(2)
        vals = random_xor_valuations(2, 2, seed=62)
        problem = AsymmetricAuctionProblem(
            [g0, g1], VertexOrdering.identity(2), 1.0, vals
        )
        # Channel 0 conflicts; channel 1 does not.
        assert not problem.is_feasible({0: frozenset({0}), 1: frozenset({0})})
        assert problem.is_feasible({0: frozenset({1}), 1: frozenset({1})})

    def test_welfare(self):
        problem, _ = theorem18_problem()
        full = frozenset(range(problem.k))
        assert problem.welfare({0: full, 3: full}) == 2.0


class TestAsymmetricLP:
    def test_lp_value_upper_bounds_integral(self):
        problem, base = theorem18_problem()
        lp_solution = AsymmetricAuctionLP(problem).solve()
        # Theorem 18: integral optimum = α(base graph).
        _, alpha = max_weight_independent_set(base)
        assert lp_solution.value >= alpha - 1e-6

    def test_equal_graphs_reduce_to_symmetric(self):
        # Same graph on every channel: the asymmetric LP must match LP (1)
        # with that graph.
        from repro.core.auction import AuctionProblem
        from repro.core.auction_lp import AuctionLP
        from repro.interference.base import ConflictStructure

        g = gnp_random_graph(10, 0.3, seed=63)
        ordering = VertexOrdering.identity(10)
        vals = random_xor_valuations(10, 3, seed=64)
        sym = AuctionProblem(ConflictStructure(g, ordering, 2.0), 3, vals)
        asym = AsymmetricAuctionProblem([g, g, g], ordering, 2.0, vals)
        assert AsymmetricAuctionLP(asym).solve().value == pytest.approx(
            AuctionLP(sym).solve().value, rel=1e-6
        )


class TestAsymmetricRounding:
    def test_feasible_output(self):
        problem, _ = theorem18_problem()
        solution = AsymmetricAuctionLP(problem).solve()
        rng = np.random.default_rng(65)
        for _ in range(5):
            alloc, info = round_asymmetric(problem, solution, rng)
            assert problem.is_feasible(alloc)
            assert info["scale"] == pytest.approx(
                2.0 * problem.k * problem.rho
            )

    def test_expectation_meets_kr_bound(self):
        """Section 6: expected welfare ≥ b*/(4kρ)."""
        problem, _ = theorem18_problem(n=12, d=4, k=2, seed=66)
        solution = AsymmetricAuctionLP(problem).solve()
        rng = np.random.default_rng(67)
        bound = solution.value / (4.0 * problem.k * problem.rho)
        mean = np.mean(
            [
                problem.welfare(round_asymmetric(problem, solution, rng)[0])
                for _ in range(150)
            ]
        )
        assert mean >= bound * 0.9  # 10% sampling slack

    def test_allocations_match_base_independent_sets(self):
        # Theorem 18 correspondence: an all-or-nothing allocation of
        # welfare b is an independent set of size b in the base graph.
        problem, base = theorem18_problem(seed=68)
        solution = AsymmetricAuctionLP(problem).solve()
        rng = np.random.default_rng(69)
        alloc, _ = round_asymmetric(problem, solution, rng)
        winners = [v for v, s in alloc.items() if len(s) == problem.k]
        assert base.is_independent(winners)
