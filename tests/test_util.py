"""Tests for repro.util: RNG plumbing, tables, validation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graphs.conflict_graph import ConflictGraph, VertexOrdering
from repro.graphs.weighted_graph import WeightedConflictGraph
from repro.util.rng import ensure_rng, spawn_rngs
from repro.util.tables import Table
from repro.util.validation import (
    channel_holders,
    check_allocation_feasible,
    check_partly_feasible,
    violated_channels,
)


class TestRng:
    def test_seed_reproducible(self):
        a = ensure_rng(42).random(5)
        b = ensure_rng(42).random(5)
        assert np.array_equal(a, b)

    def test_generator_passthrough(self):
        g = np.random.default_rng(0)
        assert ensure_rng(g) is g

    def test_none_gives_generator(self):
        assert isinstance(ensure_rng(None), np.random.Generator)

    def test_spawn_count(self):
        children = spawn_rngs(7, 4)
        assert len(children) == 4
        draws = [c.random() for c in children]
        assert len(set(draws)) == 4  # children are distinct streams

    def test_spawn_deterministic(self):
        a = [g.random() for g in spawn_rngs(5, 3)]
        b = [g.random() for g in spawn_rngs(5, 3)]
        assert a == b

    def test_spawn_zero(self):
        assert spawn_rngs(1, 0) == []

    def test_spawn_negative_raises(self):
        with pytest.raises(ValueError):
            spawn_rngs(1, -1)


class TestTable:
    def test_render_alignment(self):
        t = Table(["a", "bb"], precision=2)
        t.add_row(1, 2.345)
        t.add_row(10, 0.5)
        lines = t.render().splitlines()
        assert len(lines) == 4
        assert "2.35" in lines[2] or "2.34" in lines[2]

    def test_row_length_mismatch(self):
        t = Table(["x"])
        with pytest.raises(ValueError):
            t.add_row(1, 2)

    def test_empty_columns_rejected(self):
        with pytest.raises(ValueError):
            Table([])

    def test_extend(self):
        t = Table(["x", "y"])
        t.extend([(1, 2), (3, 4)])
        assert len(t.rows) == 2

    def test_bool_formatting(self):
        t = Table(["ok"])
        t.add_row(True)
        assert "True" in t.render()


class TestValidation:
    def setup_method(self):
        # Triangle 0-1-2 plus isolated 3.
        self.graph = ConflictGraph(4, [(0, 1), (1, 2), (0, 2)])

    def test_channel_holders(self):
        alloc = {0: frozenset({0}), 3: frozenset({0, 1})}
        holders = channel_holders(alloc, 2)
        assert holders == [[0, 3], [3]]

    def test_out_of_range_channel(self):
        with pytest.raises(ValueError):
            channel_holders({0: frozenset({5})}, 2)

    def test_feasible_allocation(self):
        alloc = {0: frozenset({0}), 1: frozenset({1}), 3: frozenset({0, 1})}
        assert check_allocation_feasible(self.graph, alloc, 2)

    def test_infeasible_allocation(self):
        alloc = {0: frozenset({0}), 1: frozenset({0})}
        assert not check_allocation_feasible(self.graph, alloc, 2)
        assert violated_channels(self.graph, alloc, 2) == [0]

    def test_empty_allocation_feasible(self):
        assert check_allocation_feasible(self.graph, {}, 3)

    def test_partly_feasible_condition(self):
        w = np.zeros((3, 3))
        w[0, 1] = 0.3  # w̄(0,1) = 0.3
        g = WeightedConflictGraph(w)
        ordering = VertexOrdering.identity(3)
        alloc = {0: frozenset({0}), 1: frozenset({0})}
        assert check_partly_feasible(g, ordering, alloc)
        w2 = np.zeros((3, 3))
        w2[0, 1] = 0.6
        g2 = WeightedConflictGraph(w2)
        assert not check_partly_feasible(g2, ordering, alloc)

    def test_partly_feasible_ignores_disjoint_channels(self):
        w = np.zeros((2, 2))
        w[0, 1] = 5.0
        g = WeightedConflictGraph(w)
        ordering = VertexOrdering.identity(2)
        alloc = {0: frozenset({0}), 1: frozenset({1})}
        assert check_partly_feasible(g, ordering, alloc)
