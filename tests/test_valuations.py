"""Tests for valuations and demand oracles."""

from __future__ import annotations

import numpy as np
import pytest

from repro.valuations.additive import (
    AdditiveValuation,
    BudgetedAdditiveValuation,
    CappedAdditiveValuation,
    UnitDemandValuation,
)
from repro.valuations.base import EMPTY_BUNDLE, Valuation, enumerate_bundles
from repro.valuations.explicit import (
    ExplicitValuation,
    SingleMindedValuation,
    XORValuation,
)
from repro.valuations.generators import (
    all_or_nothing_valuations,
    random_additive_valuations,
    random_budgeted_valuations,
    random_capped_additive_valuations,
    random_mixed_valuations,
    random_single_minded_valuations,
    random_unit_demand_valuations,
    random_xor_valuations,
)
from repro.valuations.oracles import brute_force_demand, verify_demand_oracle


class TestEnumerateBundles:
    def test_counts(self):
        assert len(list(enumerate_bundles(3))) == 8
        assert frozenset() in list(enumerate_bundles(2))


class TestExplicit:
    def test_value_table(self):
        v = ExplicitValuation(3, {frozenset({0, 1}): 7.0})
        assert v.value(frozenset({0, 1})) == 7.0
        assert v.value(frozenset({0, 1, 2})) == 0.0  # non-monotone allowed
        assert v.value(EMPTY_BUNDLE) == 0.0

    def test_negative_bid_rejected(self):
        with pytest.raises(ValueError):
            ExplicitValuation(2, {frozenset({0}): -1.0})

    def test_out_of_range_bundle(self):
        with pytest.raises(ValueError):
            ExplicitValuation(2, {frozenset({5}): 1.0})

    def test_demand_matches_brute_force(self):
        v = ExplicitValuation(4, {frozenset({0}): 3.0, frozenset({1, 2}): 5.0})
        assert verify_demand_oracle(v, trials=30, price_scale=4.0, seed=1)

    def test_support(self):
        v = ExplicitValuation(3, {frozenset({1}): 2.0})
        assert v.support() == [frozenset({1})]
        assert v.max_value() == 2.0


class TestXOR:
    def test_free_disposal(self):
        v = XORValuation(3, {frozenset({0}): 4.0, frozenset({1, 2}): 6.0})
        assert v.value(frozenset({0, 1})) == 4.0
        assert v.value(frozenset({0, 1, 2})) == 6.0

    def test_demand_empty_when_prices_high(self):
        v = XORValuation(2, {frozenset({0}): 1.0})
        bundle, util = v.demand(np.array([10.0, 10.0]))
        assert bundle == EMPTY_BUNDLE and util == 0.0

    def test_demand_with_negative_prices(self):
        v = XORValuation(3, {frozenset({0}): 4.0})
        bundle, util = v.demand(np.array([1.0, -2.0, 0.5]))
        # Taking the bid plus the negatively-priced channel is optimal.
        assert 1 in bundle
        assert util == pytest.approx(5.0)
        achieved = v.value(bundle) - (1.0 * (0 in bundle)) + 2.0 * (1 in bundle) - 0.5 * (2 in bundle)
        assert achieved == pytest.approx(util)

    def test_oracle_verified(self):
        for v in random_xor_valuations(5, 4, seed=2):
            assert verify_demand_oracle(v, trials=30, price_scale=60.0, seed=3)


class TestSingleMinded:
    def test_construction(self):
        v = SingleMindedValuation(4, frozenset({1, 3}), 9.0)
        assert v.value(frozenset({1, 3})) == 9.0
        assert v.value(frozenset({1})) == 0.0
        assert v.value(frozenset({0, 1, 3})) == 9.0

    def test_empty_bundle_rejected(self):
        with pytest.raises(ValueError):
            SingleMindedValuation(3, frozenset(), 1.0)


class TestAdditiveFamilies:
    def test_additive_value_and_demand(self):
        v = AdditiveValuation(np.array([3.0, 1.0, 2.0]))
        assert v.value(frozenset({0, 2})) == 5.0
        bundle, util = v.demand(np.array([1.0, 2.0, 1.0]))
        assert bundle == frozenset({0, 2})
        assert util == pytest.approx(3.0)

    def test_unit_demand(self):
        v = UnitDemandValuation(np.array([3.0, 5.0]))
        assert v.value(frozenset({0, 1})) == 5.0
        bundle, _ = v.demand(np.array([0.0, 4.0]))
        assert bundle == frozenset({0})  # margin 3 beats margin 1

    def test_capped_additive(self):
        v = CappedAdditiveValuation(np.array([5.0, 4.0, 3.0]), cap=2)
        assert v.value(frozenset({0, 1, 2})) == 9.0
        bundle, util = v.demand(np.zeros(3))
        assert bundle == frozenset({0, 1}) and util == 9.0

    def test_budgeted_value(self):
        v = BudgetedAdditiveValuation(np.array([5.0, 5.0]), budget=7.0)
        assert v.value(frozenset({0, 1})) == 7.0
        assert v.value(frozenset({0})) == 5.0

    def test_budgeted_demand_exact_small_k(self):
        v = BudgetedAdditiveValuation(np.array([5.0, 5.0, 2.0]), budget=7.0)
        assert verify_demand_oracle(v, trials=40, price_scale=6.0, seed=4)

    def test_validation(self):
        with pytest.raises(ValueError):
            AdditiveValuation(np.array([-1.0]))
        with pytest.raises(ValueError):
            CappedAdditiveValuation(np.array([1.0]), cap=0)
        with pytest.raises(ValueError):
            BudgetedAdditiveValuation(np.array([1.0]), budget=0.0)

    def test_max_values(self):
        assert AdditiveValuation(np.array([1.0, 2.0])).max_value() == 3.0
        assert UnitDemandValuation(np.array([1.0, 2.0])).max_value() == 2.0
        assert CappedAdditiveValuation(np.array([1.0, 2.0, 3.0]), 2).max_value() == 5.0
        assert BudgetedAdditiveValuation(np.array([4.0, 4.0]), 5.0).max_value() == 5.0


class TestGenerators:
    @pytest.mark.parametrize(
        "factory",
        [
            random_xor_valuations,
            random_additive_valuations,
            random_unit_demand_valuations,
            random_capped_additive_valuations,
            random_budgeted_valuations,
            random_single_minded_valuations,
            random_mixed_valuations,
        ],
    )
    def test_oracles_exact(self, factory):
        for v in factory(4, 4, seed=5):
            assert verify_demand_oracle(v, trials=25, price_scale=40.0, seed=6)

    def test_reproducible(self):
        a = random_xor_valuations(3, 4, seed=7)
        b = random_xor_valuations(3, 4, seed=7)
        for va, vb in zip(a, b):
            assert va.bids == vb.bids

    def test_all_or_nothing(self):
        vals = all_or_nothing_valuations(4, 3, value=2.0)
        full = frozenset(range(3))
        for v in vals:
            assert v.value(full) == 2.0
            assert v.value(frozenset({0})) == 0.0

    def test_brute_force_demand_reference(self):
        v = XORValuation(3, {frozenset({0, 1}): 5.0})
        bundle, util = brute_force_demand(v, np.array([1.0, 1.0, 9.0]))
        assert bundle == frozenset({0, 1}) and util == 3.0


class TestSupportItems:
    """support_items() must equal [(T, value(T)) for T in support()]."""

    @pytest.mark.parametrize(
        "factory",
        [
            random_xor_valuations,
            random_single_minded_valuations,
            random_mixed_valuations,
        ],
    )
    def test_matches_value_queries(self, factory):
        for v in factory(5, 4, seed=31):
            items = v.support_items()
            supp = v.support()
            if supp is None:
                assert items is None
                continue
            assert [bundle for bundle, _ in items] == supp
            for bundle, value in items:
                assert value == v.value(bundle)

    def test_xor_free_disposal_closure(self):
        # a sub-bid worth more than the bid on the superset itself
        v = XORValuation(3, {frozenset({0}): 9.0, frozenset({0, 1}): 4.0})
        assert dict(v.support_items())[frozenset({0, 1})] == 9.0

    def test_oracle_only_returns_none(self):
        class OracleOnly(Valuation):
            def value(self, bundle):
                return float(len(bundle))

        assert OracleOnly(3).support_items() is None
