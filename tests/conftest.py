"""Shared fixtures: small deterministic instances of every model."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.auction import AuctionProblem
from repro.geometry.disks import random_disk_instance
from repro.geometry.links import random_links
from repro.interference.physical import linear_power, physical_model_structure
from repro.interference.power_control import power_control_structure
from repro.interference.protocol import protocol_model
from repro.valuations.generators import random_xor_valuations


@pytest.fixture(scope="session")
def links12():
    return random_links(12, seed=101, length_range=(0.03, 0.1))


@pytest.fixture(scope="session")
def links25():
    return random_links(25, seed=102, length_range=(0.02, 0.08))


@pytest.fixture(scope="session")
def disk30():
    return random_disk_instance(30, seed=103)


@pytest.fixture(scope="session")
def protocol_structure(links25):
    return protocol_model(links25, delta=1.0)


@pytest.fixture(scope="session")
def physical_structure(links12):
    return physical_model_structure(links12, linear_power(links12, 3.0))


@pytest.fixture(scope="session")
def power_control_struct(links12):
    return power_control_structure(links12)


@pytest.fixture()
def protocol_problem(protocol_structure):
    vals = random_xor_valuations(protocol_structure.n, 4, seed=104)
    return AuctionProblem(protocol_structure, 4, vals)


@pytest.fixture()
def weighted_problem(physical_structure):
    vals = random_xor_valuations(physical_structure.n, 4, seed=105)
    return AuctionProblem(physical_structure, 4, vals)


@pytest.fixture()
def rng():
    return np.random.default_rng(999)
