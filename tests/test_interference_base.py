"""Tests for the conflict-structure contracts and the report CLI."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graphs.conflict_graph import ConflictGraph, VertexOrdering
from repro.graphs.weighted_graph import WeightedConflictGraph
from repro.interference.base import ConflictStructure, WeightedConflictStructure


class TestConflictStructure:
    def test_size_mismatch_rejected(self):
        with pytest.raises(ValueError):
            ConflictStructure(ConflictGraph(3), VertexOrdering.identity(4), 1.0)

    def test_negative_rho_rejected(self):
        with pytest.raises(ValueError):
            ConflictStructure(ConflictGraph(3), VertexOrdering.identity(3), -1.0)

    def test_metadata_defaults(self):
        cs = ConflictStructure(ConflictGraph(2), VertexOrdering.identity(2), 1.0)
        assert cs.metadata == {}
        assert cs.rho_source == "certified"
        assert cs.n == 2


class TestWeightedConflictStructure:
    def test_size_mismatch_rejected(self):
        g = WeightedConflictGraph(np.zeros((3, 3)))
        with pytest.raises(ValueError):
            WeightedConflictStructure(g, VertexOrdering.identity(2), 1.0)

    def test_negative_rho_rejected(self):
        g = WeightedConflictGraph(np.zeros((2, 2)))
        with pytest.raises(ValueError):
            WeightedConflictStructure(g, VertexOrdering.identity(2), -0.5)


class TestReportCLI:
    def test_main_list(self, capsys):
        from repro.experiments.report import main

        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "E1" in out and "A5" in out

    def test_main_runs_subset(self, capsys):
        from repro.experiments.report import main

        assert main(["E10"]) == 0
        out = capsys.readouterr().out
        assert "clique integrality gaps" in out

    def test_main_unknown_id(self, capsys):
        from repro.experiments.report import main

        assert main(["E99"]) == 2
