"""Tests for exact/greedy independent set computations."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graphs.conflict_graph import ConflictGraph
from repro.graphs.generators import clique, cycle, gnp_random_graph, path
from repro.graphs.independence import (
    greedy_independent_set,
    greedy_weighted_independent_set,
    max_independent_set_size,
    max_profit_weighted_independent_set,
    max_weight_independent_set,
)
from repro.graphs.weighted_graph import WeightedConflictGraph


class TestExactMWIS:
    def test_path_unit_weights(self):
        # α(P5) = 3 (vertices 0, 2, 4).
        s, val = max_weight_independent_set(path(5))
        assert val == 3 and s == [0, 2, 4]

    def test_cycle(self):
        assert max_independent_set_size(cycle(5)) == 2
        assert max_independent_set_size(cycle(6)) == 3

    def test_clique(self):
        assert max_independent_set_size(clique(7)) == 1

    def test_weights_override_size(self):
        # On P3, picking the middle vertex (weight 10) beats both ends.
        s, val = max_weight_independent_set(path(3), [1.0, 10.0, 1.0])
        assert s == [1] and val == 10.0

    def test_nonpositive_profit_excluded(self):
        g = ConflictGraph(3)
        s, val = max_weight_independent_set(g, [2.0, 0.0, -1.0])
        assert s == [0] and val == 2.0

    def test_empty_graph(self):
        s, val = max_weight_independent_set(ConflictGraph(0))
        assert s == [] and val == 0.0

    def test_profit_shape_checked(self):
        with pytest.raises(ValueError):
            max_weight_independent_set(path(3), [1.0])

    def test_matches_networkx_on_random_graphs(self):
        import networkx as nx

        for seed in range(5):
            g = gnp_random_graph(12, 0.35, seed=seed)
            _, val = max_weight_independent_set(g)
            nx_g = g.to_networkx()
            comp = nx.complement(nx_g)
            expected = max(len(c) for c in nx.find_cliques(comp))
            assert int(val) == expected


class TestGreedy:
    def test_greedy_is_independent(self):
        g = gnp_random_graph(20, 0.3, seed=1)
        rng = np.random.default_rng(2)
        profits = rng.random(20)
        s, val = greedy_independent_set(g, profits)
        assert g.is_independent(s)
        assert val == pytest.approx(float(profits[s].sum()))

    def test_greedy_le_exact(self):
        g = gnp_random_graph(14, 0.4, seed=3)
        profits = np.random.default_rng(4).random(14) * 10
        _, greedy_val = greedy_independent_set(g, profits)
        _, exact_val = max_weight_independent_set(g, profits)
        assert greedy_val <= exact_val + 1e-9

    def test_ratio_mode(self):
        g = gnp_random_graph(16, 0.3, seed=5)
        s, _ = greedy_independent_set(g, np.ones(16), by_ratio=True)
        assert g.is_independent(s)


class TestWeightedIndependence:
    def make_graph(self):
        w = np.zeros((4, 4))
        w[0, 1] = w[1, 0] = 0.6
        w[2, 3] = w[3, 2] = 0.3
        w[0, 3] = w[3, 0] = 0.5
        return WeightedConflictGraph(w)

    def test_exact_respects_constraints(self):
        g = self.make_graph()
        profits = [1.0, 1.0, 1.0, 1.0]
        s, val = max_profit_weighted_independent_set(g, profits)
        assert g.is_independent(s)
        assert val == len(s)

    def test_exact_beats_greedy(self):
        rng = np.random.default_rng(6)
        for _ in range(5):
            w = rng.random((8, 8)) * 0.5
            np.fill_diagonal(w, 0)
            g = WeightedConflictGraph(w)
            profits = rng.random(8) * 5
            _, greedy_val = greedy_weighted_independent_set(g, profits)
            _, exact_val = max_profit_weighted_independent_set(g, profits)
            assert exact_val >= greedy_val - 1e-9

    def test_exact_brute_force_agreement(self):
        from itertools import combinations

        rng = np.random.default_rng(7)
        w = rng.random((7, 7)) * 0.6
        np.fill_diagonal(w, 0)
        g = WeightedConflictGraph(w)
        profits = rng.random(7) * 3
        _, exact_val = max_profit_weighted_independent_set(g, profits)
        best = 0.0
        for size in range(1, 8):
            for combo in combinations(range(7), size):
                if g.is_independent(combo):
                    best = max(best, float(profits[list(combo)].sum()))
        assert exact_val == pytest.approx(best)

    def test_candidates_restriction(self):
        g = self.make_graph()
        s, _ = max_profit_weighted_independent_set(
            g, [5.0, 1.0, 1.0, 1.0], candidates=[1, 2, 3]
        )
        assert 0 not in s

    def test_node_limit(self):
        rng = np.random.default_rng(8)
        w = rng.random((18, 18)) * 0.05
        np.fill_diagonal(w, 0)
        g = WeightedConflictGraph(w)
        with pytest.raises(RuntimeError):
            max_profit_weighted_independent_set(
                g, rng.random(18) + 0.5, node_limit=10
            )

    def test_greedy_feasible(self):
        rng = np.random.default_rng(9)
        w = rng.random((10, 10))
        np.fill_diagonal(w, 0)
        g = WeightedConflictGraph(w)
        s, _ = greedy_weighted_independent_set(g, rng.random(10))
        assert g.is_independent(s)
