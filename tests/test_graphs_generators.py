"""Tests for graph generators, including the Theorem 18 construction."""

from __future__ import annotations

import math

import pytest

from repro.graphs.conflict_graph import VertexOrdering
from repro.graphs.generators import (
    clique,
    cycle,
    empty_graph,
    gnp_random_graph,
    path,
    random_regular_graph,
    star,
    theorem18_edge_partition,
)
from repro.graphs.inductive import rho_of_ordering


class TestBasicGenerators:
    def test_empty(self):
        g = empty_graph(5)
        assert g.n == 5 and g.m == 0

    def test_clique_edges(self):
        assert clique(5).m == 10

    def test_path_cycle_star(self):
        assert path(5).m == 4
        assert cycle(5).m == 5
        assert star(5).m == 4

    def test_cycle_too_small(self):
        with pytest.raises(ValueError):
            cycle(2)

    def test_gnp_bounds(self):
        g = gnp_random_graph(20, 0.0, seed=0)
        assert g.m == 0
        g2 = gnp_random_graph(20, 1.0, seed=0)
        assert g2.m == 190

    def test_gnp_reproducible(self):
        a = gnp_random_graph(15, 0.3, seed=42)
        b = gnp_random_graph(15, 0.3, seed=42)
        assert sorted(a.edges()) == sorted(b.edges())

    def test_gnp_p_validation(self):
        with pytest.raises(ValueError):
            gnp_random_graph(5, 1.5)

    def test_random_regular(self):
        g = random_regular_graph(12, 3, seed=1)
        assert all(g.degree(v) == 3 for v in range(12))


class TestTheorem18:
    def test_edges_partitioned(self):
        g = gnp_random_graph(15, 0.4, seed=2)
        parts = theorem18_edge_partition(g, 3)
        assert len(parts) == 3
        total = sum(p.m for p in parts)
        assert total == g.m
        # Every original edge appears in exactly one channel graph.
        all_edges = sorted(e for p in parts for e in p.edges())
        assert all_edges == sorted(g.edges())

    def test_backward_degree_bound(self):
        # Each channel graph gives each vertex ≤ ⌈backdeg/k⌉ backward edges,
        # hence ρ(π) ≤ ⌈d/k⌉ under the same ordering.
        g = random_regular_graph(16, 6, seed=3)
        k = 3
        ordering = VertexOrdering.identity(16)
        parts = theorem18_edge_partition(g, k, ordering)
        bound = math.ceil(6 / k)
        for part in parts:
            assert rho_of_ordering(part, ordering) <= bound

    def test_k_one_identity(self):
        g = gnp_random_graph(10, 0.3, seed=4)
        parts = theorem18_edge_partition(g, 1)
        assert sorted(parts[0].edges()) == sorted(g.edges())

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            theorem18_edge_partition(path(4), 0)
