"""Tests for the geometry substrate: points, metrics, disks, links."""

from __future__ import annotations

import numpy as np
import pytest

from repro.geometry.disks import (
    disk_graph,
    radius_ordering,
    random_disk_instance,
    unit_disk_graph,
)
from repro.geometry.links import (
    length_ordering,
    links_from_arrays,
    random_links,
    random_metric_links,
)
from repro.geometry.metric import (
    EuclideanMetric,
    MatrixMetric,
    random_shortest_path_metric,
)
from repro.geometry.points import (
    cross_distances,
    pairwise_distances,
    sample_clustered_points,
    sample_uniform_points,
)


class TestPoints:
    def test_uniform_in_extent(self):
        pts = sample_uniform_points(50, extent=2.0, seed=1)
        assert pts.shape == (50, 2)
        assert pts.min() >= 0 and pts.max() <= 2.0

    def test_uniform_reproducible(self):
        assert np.array_equal(
            sample_uniform_points(10, seed=3), sample_uniform_points(10, seed=3)
        )

    def test_invalid_extent(self):
        with pytest.raises(ValueError):
            sample_uniform_points(5, extent=0.0)

    def test_clustered_clipped(self):
        pts = sample_clustered_points(100, clusters=3, seed=2)
        assert pts.min() >= 0 and pts.max() <= 1.0

    def test_clustered_cluster_validation(self):
        with pytest.raises(ValueError):
            sample_clustered_points(10, clusters=0)

    def test_pairwise_symmetric_zero_diag(self):
        pts = sample_uniform_points(10, seed=4)
        d = pairwise_distances(pts)
        assert np.allclose(d, d.T)
        assert np.allclose(np.diagonal(d), 0)

    def test_pairwise_matches_manual(self):
        pts = np.array([[0.0, 0.0], [3.0, 4.0]])
        d = pairwise_distances(pts)
        assert d[0, 1] == pytest.approx(5.0)

    def test_cross_distances(self):
        a = np.array([[0.0, 0.0]])
        b = np.array([[1.0, 0.0], [0.0, 2.0]])
        d = cross_distances(a, b)
        assert d.shape == (1, 2)
        assert d[0, 0] == pytest.approx(1.0) and d[0, 1] == pytest.approx(2.0)


class TestMetric:
    def test_euclidean_submatrix(self):
        coords = np.array([[0, 0], [1, 0], [0, 1]], dtype=float)
        m = EuclideanMetric(coords)
        sub = m.distance_submatrix(np.array([0]), np.array([1, 2]))
        assert sub[0, 0] == pytest.approx(1.0)
        assert m.d(1, 2) == pytest.approx(np.sqrt(2))

    def test_euclidean_triangle(self):
        m = EuclideanMetric(sample_uniform_points(12, seed=5))
        assert m.check_triangle_inequality()

    def test_matrix_metric_validation(self):
        with pytest.raises(ValueError):
            MatrixMetric(np.array([[0.0, 1.0], [2.0, 0.0]]))  # asymmetric
        with pytest.raises(ValueError):
            MatrixMetric(np.array([[1.0]]))  # nonzero diagonal

    def test_shortest_path_metric_valid(self):
        m = random_shortest_path_metric(10, seed=6)
        assert m.size == 10
        assert m.check_triangle_inequality()


class TestDisks:
    def test_disk_graph_intersections(self):
        pts = np.array([[0.0, 0.0], [1.0, 0.0], [5.0, 5.0]])
        g = disk_graph(pts, np.array([0.6, 0.6, 0.6]))
        assert g.has_edge(0, 1)  # 0.6 + 0.6 > 1
        assert not g.has_edge(0, 2)

    def test_radii_validation(self):
        with pytest.raises(ValueError):
            disk_graph(np.zeros((2, 2)), np.array([1.0, -1.0]))
        with pytest.raises(ValueError):
            disk_graph(np.zeros((2, 2)), np.array([1.0]))

    def test_unit_disk(self):
        pts = np.array([[0.0, 0.0], [0.5, 0.0]])
        assert unit_disk_graph(pts, 0.3).has_edge(0, 1)
        assert not unit_disk_graph(pts, 0.2).has_edge(0, 1)

    def test_radius_ordering_descending(self):
        o = radius_ordering(np.array([0.1, 0.5, 0.3]))
        assert list(o.perm) == [1, 2, 0]

    def test_random_instance(self):
        inst = random_disk_instance(25, seed=7, radius_range=(0.05, 0.1))
        assert inst.n == 25
        assert inst.graph.n == 25
        # ordering sorts by decreasing radius
        radii_in_order = inst.radii[inst.ordering.perm]
        assert (np.diff(radii_in_order) <= 1e-12).all()

    def test_radius_range_validation(self):
        with pytest.raises(ValueError):
            random_disk_instance(5, radius_range=(0.2, 0.1))


class TestLinks:
    def test_random_links_lengths(self):
        ls = random_links(20, seed=8, length_range=(0.05, 0.1))
        assert ls.n == 20
        assert (ls.lengths >= 0.05 - 1e-12).all()
        assert (ls.lengths <= 0.1 + 1e-12).all()

    def test_sender_receiver_matrix_diagonal(self):
        ls = random_links(10, seed=9)
        sr = ls.sender_receiver_matrix()
        assert np.allclose(np.diagonal(sr), ls.lengths)

    def test_length_ordering(self):
        ls = random_links(15, seed=10)
        o = length_ordering(ls, descending=True)
        lens = ls.lengths[o.perm]
        assert (np.diff(lens) <= 1e-12).all()

    def test_links_from_arrays(self):
        s = np.array([[0.0, 0.0], [1.0, 1.0]])
        r = np.array([[0.1, 0.0], [1.0, 1.2]])
        ls = links_from_arrays(s, r)
        assert ls.lengths[0] == pytest.approx(0.1)
        assert ls.lengths[1] == pytest.approx(0.2)

    def test_links_shape_validation(self):
        with pytest.raises(ValueError):
            links_from_arrays(np.zeros((2, 2)), np.zeros((3, 2)))

    def test_subset(self):
        ls = random_links(10, seed=11)
        sub = ls.subset(np.array([2, 5]))
        assert sub.n == 2
        assert sub.lengths[0] == pytest.approx(ls.lengths[2])

    def test_metric_links(self):
        ls = random_metric_links(6, seed=12)
        assert ls.n == 6
        assert (ls.lengths > 0).all()

    def test_length_range_validation(self):
        with pytest.raises(ValueError):
            random_links(5, length_range=(0.1, 0.05))
