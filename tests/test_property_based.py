"""Property-based tests (hypothesis) on core data structures and invariants."""

from __future__ import annotations

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.graphs.conflict_graph import ConflictGraph, VertexOrdering
from repro.graphs.independence import (
    greedy_independent_set,
    greedy_weighted_independent_set,
    max_profit_weighted_independent_set,
    max_weight_independent_set,
)
from repro.graphs.inductive import inductive_independence_number, rho_of_ordering
from repro.graphs.weighted_graph import WeightedConflictGraph
from repro.valuations.additive import (
    AdditiveValuation,
    CappedAdditiveValuation,
    UnitDemandValuation,
)
from repro.valuations.explicit import XORValuation
from repro.valuations.oracles import brute_force_demand

SETTINGS = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def graphs(draw, max_n=10):
    n = draw(st.integers(min_value=1, max_value=max_n))
    pairs = [(u, v) for u in range(n) for v in range(u + 1, n)]
    mask = draw(st.lists(st.booleans(), min_size=len(pairs), max_size=len(pairs)))
    edges = [p for p, keep in zip(pairs, mask) if keep]
    return ConflictGraph(n, edges)


@st.composite
def weighted_graphs(draw, max_n=8):
    n = draw(st.integers(min_value=1, max_value=max_n))
    values = draw(
        st.lists(
            st.floats(min_value=0.0, max_value=1.5, allow_nan=False),
            min_size=n * n,
            max_size=n * n,
        )
    )
    w = np.array(values).reshape(n, n)
    np.fill_diagonal(w, 0.0)
    return WeightedConflictGraph(w)


class TestGraphInvariants:
    @SETTINGS
    @given(graphs())
    def test_mwis_output_is_independent(self, g):
        s, val = max_weight_independent_set(g)
        assert g.is_independent(s)
        assert val == len(s)

    @SETTINGS
    @given(graphs())
    def test_greedy_never_beats_exact(self, g):
        rng = np.random.default_rng(0)
        profits = rng.random(g.n) + 0.1
        _, greedy_val = greedy_independent_set(g, profits)
        _, exact_val = max_weight_independent_set(g, profits)
        assert greedy_val <= exact_val + 1e-9

    @SETTINGS
    @given(graphs())
    def test_rho_ordering_achieves_optimum(self, g):
        rho, ordering = inductive_independence_number(g)
        assert rho_of_ordering(g, ordering) == rho

    @SETTINGS
    @given(graphs())
    def test_rho_bounded_by_max_degree_and_alpha(self, g):
        rho, _ = inductive_independence_number(g)
        assert rho <= g.max_degree()
        _, alpha = max_weight_independent_set(g)
        assert rho <= max(alpha, 0)

    @SETTINGS
    @given(graphs())
    def test_identity_ordering_upper_bounds_rho(self, g):
        rho, _ = inductive_independence_number(g)
        assert rho_of_ordering(g, VertexOrdering.identity(g.n)) >= rho

    @SETTINGS
    @given(graphs())
    def test_complement_involution(self, g):
        assert np.array_equal(
            g.complement().complement().adjacency, g.adjacency
        )


class TestWeightedGraphInvariants:
    @SETTINGS
    @given(weighted_graphs())
    def test_exact_weighted_mwis_feasible(self, g):
        rng = np.random.default_rng(1)
        profits = rng.random(g.n) + 0.1
        s, _ = max_profit_weighted_independent_set(g, profits)
        assert g.is_independent(s)

    @SETTINGS
    @given(weighted_graphs())
    def test_greedy_weighted_feasible_and_dominated(self, g):
        rng = np.random.default_rng(2)
        profits = rng.random(g.n) + 0.1
        s, gval = greedy_weighted_independent_set(g, profits)
        assert g.is_independent(s)
        _, eval_ = max_profit_weighted_independent_set(g, profits)
        assert gval <= eval_ + 1e-9

    @SETTINGS
    @given(weighted_graphs())
    def test_subsets_of_independent_sets_independent(self, g):
        rng = np.random.default_rng(3)
        s, _ = max_profit_weighted_independent_set(g, rng.random(g.n) + 0.1)
        if len(s) > 1:
            assert g.is_independent(s[:-1])

    @SETTINGS
    @given(weighted_graphs())
    def test_wbar_symmetry(self, g):
        wbar = g.wbar_matrix
        assert np.allclose(wbar, wbar.T)


@st.composite
def price_vectors(draw, k):
    return np.array(
        draw(
            st.lists(
                st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
                min_size=k,
                max_size=k,
            )
        )
    )


class TestDemandOracleProperties:
    @SETTINGS
    @given(
        st.lists(
            st.floats(min_value=0.0, max_value=20.0, allow_nan=False),
            min_size=3,
            max_size=5,
        ),
        st.data(),
    )
    def test_additive_demand_optimal(self, values, data):
        v = AdditiveValuation(np.array(values))
        p = data.draw(price_vectors(v.k))
        bundle, util = v.demand(p)
        _, ref = brute_force_demand(v, p)
        assert abs(util - ref) < 1e-9
        assert util >= 0

    @SETTINGS
    @given(
        st.lists(
            st.floats(min_value=0.0, max_value=20.0, allow_nan=False),
            min_size=3,
            max_size=5,
        ),
        st.data(),
    )
    def test_unit_demand_optimal(self, values, data):
        v = UnitDemandValuation(np.array(values))
        p = data.draw(price_vectors(v.k))
        _, util = v.demand(p)
        _, ref = brute_force_demand(v, p)
        assert abs(util - ref) < 1e-9

    @SETTINGS
    @given(
        st.lists(
            st.floats(min_value=0.0, max_value=20.0, allow_nan=False),
            min_size=3,
            max_size=5,
        ),
        st.integers(min_value=1, max_value=3),
        st.data(),
    )
    def test_capped_demand_optimal(self, values, cap, data):
        v = CappedAdditiveValuation(np.array(values), cap)
        p = data.draw(price_vectors(v.k))
        _, util = v.demand(p)
        _, ref = brute_force_demand(v, p)
        assert abs(util - ref) < 1e-9

    @SETTINGS
    @given(st.data())
    def test_xor_demand_optimal(self, data):
        k = 4
        n_bids = data.draw(st.integers(min_value=1, max_value=4))
        bids = {}
        for _ in range(n_bids):
            size = data.draw(st.integers(min_value=1, max_value=k))
            bundle = frozenset(
                data.draw(
                    st.lists(
                        st.integers(min_value=0, max_value=k - 1),
                        min_size=size,
                        max_size=size,
                        unique=True,
                    )
                )
            )
            bids[bundle] = data.draw(
                st.floats(min_value=0.1, max_value=50.0, allow_nan=False)
            )
        v = XORValuation(k, bids)
        p = data.draw(price_vectors(k))
        _, util = v.demand(p)
        _, ref = brute_force_demand(v, p)
        assert util >= ref - 1e-9

    @SETTINGS
    @given(st.data())
    def test_demand_utility_consistent(self, data):
        values = data.draw(
            st.lists(
                st.floats(min_value=0.0, max_value=20.0, allow_nan=False),
                min_size=3,
                max_size=5,
            )
        )
        v = AdditiveValuation(np.array(values))
        p = data.draw(price_vectors(v.k))
        bundle, util = v.demand(p)
        achieved = v.value(bundle) - sum(p[j] for j in bundle)
        assert abs(achieved - util) < 1e-9
