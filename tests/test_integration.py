"""Cross-module integration tests: every interference model through the
full auction pipeline, with external validation at each seam."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.auction import AuctionProblem
from repro.core.exact import solve_exact
from repro.core.solver import SpectrumAuctionSolver
from repro.geometry.disks import random_disk_instance
from repro.geometry.links import random_links, random_metric_links
from repro.interference.civilized import CivilizedInstance, civilized_distance2_model
from repro.interference.disk import (
    disk_transmitter_model,
    distance2_coloring_model,
)
from repro.interference.distance2 import distance2_matching_model
from repro.interference.physical import (
    PhysicalModel,
    linear_power,
    mean_power,
    physical_model_structure,
    uniform_power,
)
from repro.interference.power_control import power_control_structure
from repro.interference.protocol import ieee80211_model, protocol_model
from repro.valuations.generators import (
    random_mixed_valuations,
    random_xor_valuations,
)


def run_pipeline(structure, k, seed):
    vals = random_xor_valuations(structure.n, k, seed=seed)
    problem = AuctionProblem(structure, k, vals)
    result = SpectrumAuctionSolver(problem).solve(seed=seed, rounding_attempts=3)
    assert result.feasible, "solver returned an infeasible allocation"
    assert result.lp_value >= result.welfare - 1e-6
    return problem, result


class TestEveryModelEndToEnd:
    def test_protocol(self):
        links = random_links(20, seed=201, length_range=(0.03, 0.09))
        run_pipeline(protocol_model(links, 1.0), 3, 202)

    def test_ieee80211(self):
        links = random_links(20, seed=203, length_range=(0.03, 0.09))
        run_pipeline(ieee80211_model(links, 1.0), 3, 204)

    def test_disk(self):
        inst = random_disk_instance(20, seed=205)
        run_pipeline(disk_transmitter_model(inst), 3, 206)

    def test_distance2_coloring(self):
        inst = random_disk_instance(18, seed=207)
        run_pipeline(distance2_coloring_model(inst), 2, 208)

    def test_civilized(self):
        inst = CivilizedInstance.sample(16, r=0.15, s=0.08, seed=209)
        run_pipeline(civilized_distance2_model(inst), 2, 210)

    def test_distance2_matching(self):
        inst = random_disk_instance(10, seed=211, radius_range=(0.05, 0.12))
        structure = distance2_matching_model(inst)
        if structure.n:
            run_pipeline(structure, 2, 212)

    @pytest.mark.parametrize("scheme", ["uniform", "linear", "mean"])
    def test_physical_fixed_power(self, scheme):
        links = random_links(14, seed=213, length_range=(0.02, 0.07))
        power = {
            "uniform": uniform_power(links),
            "linear": linear_power(links, 3.0),
            "mean": mean_power(links, 3.0),
        }[scheme]
        structure = physical_model_structure(links, power)
        problem, result = run_pipeline(structure, 2, 214)
        # Feasibility in the weighted graph ⟺ SINR feasibility per channel.
        model = PhysicalModel(links, 3.0, 1.5, 0.0)
        for j in range(2):
            members = [v for v, s in result.allocation.items() if j in s]
            if members:
                assert model.is_feasible(members, power)

    def test_power_control_euclidean(self):
        links = random_links(14, seed=215, length_range=(0.02, 0.07))
        structure = power_control_structure(links)
        vals = random_xor_valuations(14, 2, seed=216)
        problem = AuctionProblem(structure, 2, vals)
        result = SpectrumAuctionSolver(problem).solve(seed=217, rounding_attempts=3)
        assert result.feasible
        if any(result.allocation.values()):
            assert result.sinr_feasible

    def test_power_control_general_metric(self):
        links = random_metric_links(10, seed=218)
        structure = power_control_structure(links)
        vals = random_xor_valuations(10, 2, seed=219)
        problem = AuctionProblem(structure, 2, vals)
        result = SpectrumAuctionSolver(problem).solve(seed=220, rounding_attempts=3)
        assert result.feasible
        if any(result.allocation.values()):
            assert result.sinr_feasible


class TestMixedValuationsPipeline:
    def test_heterogeneous_population(self):
        links = random_links(15, seed=221, length_range=(0.03, 0.09))
        structure = protocol_model(links, 1.0)
        vals = random_mixed_valuations(15, 3, seed=222)
        problem = AuctionProblem(structure, 3, vals)
        result = SpectrumAuctionSolver(problem).solve(
            seed=223, lp_method="column_generation", rounding_attempts=3
        )
        assert result.feasible


class TestBoundsAcrossPipeline:
    def test_sandwich_exact_between_rounding_and_lp(self):
        links = random_links(10, seed=224, length_range=(0.03, 0.1))
        structure = protocol_model(links, 1.0)
        vals = random_xor_valuations(10, 2, seed=225)
        problem = AuctionProblem(structure, 2, vals)
        result = SpectrumAuctionSolver(problem).solve(seed=226, rounding_attempts=5)
        exact = solve_exact(problem)
        assert result.welfare <= exact.value + 1e-6
        assert exact.value <= result.lp_value + 1e-6

    def test_expected_welfare_meets_bound_across_models(self):
        """Theorem 3 expectation check on a disk instance."""
        inst = random_disk_instance(18, seed=227)
        structure = disk_transmitter_model(inst)
        vals = random_xor_valuations(18, 4, seed=228)
        problem = AuctionProblem(structure, 4, vals)
        solver = SpectrumAuctionSolver(problem)
        lp = solver.solve_lp()
        bound = lp.value / (8.0 * math.sqrt(4) * structure.rho)
        rng = np.random.default_rng(229)
        from repro.core.rounding import round_unweighted

        mean = np.mean(
            [
                problem.welfare(round_unweighted(problem, lp, rng)[0])
                for _ in range(50)
            ]
        )
        assert mean >= bound
