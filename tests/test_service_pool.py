"""Process shard pool: placement invariance, crash recovery, accounting.

These tests spawn real worker processes (forkserver/spawn), so they keep
scenes tiny (n=24) and worker counts small — what they pin is behavior,
not throughput; the scaling numbers live in benchmarks/bench_service.py.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.experiments.workloads import metro_disk_scene, metro_protocol_scene
from repro.service import (
    AuctionRequest,
    AuctionService,
    FaultPlan,
    FaultSpec,
    WorkerCrashError,
    poisson_trace,
)
from repro.valuations.generators import random_xor_valuations

N = 24
K = 3


@pytest.fixture(scope="module")
def scene():
    return metro_disk_scene(N, seed=501)


def make_service(scene, executor="process", **overrides):
    options = {
        "executor": executor,
        "num_shards": 2,
        "coalesce_window": 0.002,
        "max_batch": 8,
    }
    options.update(overrides)
    service = AuctionService(**options)
    service.register_scene(scene)
    return service


def make_trace(service, num_requests=10, seed=77, **kwargs):
    [scene_id] = service.registry.ids()
    return poisson_trace(
        service.registry,
        [scene_id],
        k=K,
        rate=500.0,
        num_requests=num_requests,
        seed=seed,
        repeat_fraction=kwargs.pop("repeat_fraction", 0.5),
        unique_profiles=kwargs.pop("unique_profiles", 3),
        **kwargs,
    )


def drive(service, trace, timeout=180):
    """Max-rate open-loop drive through the queue (arrival stamps ignored)."""
    futures = [service.submit(item.request) for item in trace]
    results = [f.result(timeout=timeout) for f in futures]
    assert service.close(timeout=timeout)
    return results


class TestPlacementInvariance:
    def test_serial_thread_process_bit_identical(self, scene):
        """The satellite pin: one trace, three placements, one answer.

        Per-request seeds drive every rounding RNG and the LP solves are
        cold (deterministic), so where a request lands — dispatcher
        thread, one of 4 shard threads, one of 4 worker processes — must
        not change a single allocation.
        """
        serial = make_service(scene, executor="serial", num_shards=1)
        trace = make_trace(serial, num_requests=12)
        threaded = make_service(scene, executor="thread", num_shards=4)
        pooled = make_service(scene, executor="process", num_shards=4)
        expected = drive(serial, trace)
        got_threads = drive(threaded, trace)
        got_pool = drive(pooled, trace)
        assert [r.allocation for r in expected] == [r.allocation for r in got_threads]
        assert [r.allocation for r in expected] == [r.allocation for r in got_pool]
        assert [r.welfare for r in expected] == [r.welfare for r in got_pool]
        assert all(r.feasible for r in got_pool)

    def test_truthful_payments_bit_identical_across_pool(self, scene):
        serial = make_service(scene, executor="serial", num_shards=1)
        trace = make_trace(serial, num_requests=4, mode="truthful")
        pooled = make_service(scene, executor="process", num_shards=2)
        expected = drive(serial, trace)
        got = drive(pooled, trace)
        for x, y in zip(expected, got):
            assert x.sampled_allocation == y.sampled_allocation
            assert np.array_equal(x.payments, y.payments)


class TestCrashRecovery:
    def test_crashed_worker_respawns_and_batch_retries(self, scene):
        """A worker killed mid-batch must not hang the queue: the pool
        respawns it and the respawned incarnation serves the retry."""
        plan = FaultPlan(
            # incarnation 0 dies on its first batch, incarnation 1 solves
            [FaultSpec(site="pool.worker.batch", kind="crash", generations=(0,))]
        )
        service = make_service(
            scene,
            num_shards=1,
            coalesce_window=0.0,
            fault_plan=plan,
            pool_config={"respawn_backoff": 0.01},
        )
        [scene_id] = service.registry.ids()
        vals = random_xor_valuations(N, K, seed=5)
        reference = make_service(scene, executor="serial")
        expected = reference.solve_batch(
            [AuctionRequest(scene_id, K, vals, seed=9)]
        )[0]
        future = service.submit(AuctionRequest(scene_id, K, vals, seed=9))
        assert future.result(timeout=180).allocation == expected.allocation
        stats = service._pool.stats()
        assert stats["restarts"] == 1
        assert stats["retried_batches"] == 1
        assert stats["failed_batches"] == 0
        assert stats["breaker_trips"] == 0
        assert stats["healthy"]
        assert service.close(timeout=180)
        assert not any(w["alive"] for w in service._pool.stats()["workers"])
        assert service.metrics.counts()["failed"] == 0
        reference.close()

    def test_legacy_crash_worker_metadata_shim(self, scene):
        """Deprecation pin: the PR 6 ``metadata["_crash_worker"]`` hook
        still kills the named incarnation (via the faults-module shim)
        until a major version removes it — new code uses FaultPlan."""
        service = make_service(
            scene,
            num_shards=1,
            coalesce_window=0.0,
            pool_config={"respawn_backoff": 0.01},
        )
        [scene_id] = service.registry.ids()
        vals = random_xor_valuations(N, K, seed=5)
        crashing = AuctionRequest(
            scene_id, K, vals, seed=9, metadata={"_crash_worker": 0}
        )
        assert service.submit(crashing).result(timeout=180).feasible
        stats = service._pool.stats()
        assert stats["restarts"] == 1
        assert stats["retried_batches"] == 1
        assert service.close(timeout=180)

    def test_killed_idle_worker_recovers_on_next_batch(self, scene):
        service = make_service(scene, num_shards=1, coalesce_window=0.0)
        [scene_id] = service.registry.ids()
        vals = random_xor_valuations(N, K, seed=6)
        first = service.submit(AuctionRequest(scene_id, K, vals, seed=1))
        first.result(timeout=180)
        service._pool._workers[0].process.kill()
        second = service.submit(AuctionRequest(scene_id, K, vals, seed=1))
        assert second.result(timeout=180).allocation == first.result().allocation
        assert service._pool.stats()["restarts"] == 1
        assert service.close(timeout=180)

    def test_exhausted_retries_fail_future_but_not_service(self, scene):
        plan = FaultPlan(
            # incarnations 0 and 1 both crash: the attempt and its single
            # retry die, so the batch fails typed; incarnation 2 is clean
            [FaultSpec(site="pool.worker.batch", kind="crash", generations=(0, 1))]
        )
        service = make_service(
            scene,
            num_shards=1,
            coalesce_window=0.0,
            worker_retries=1,
            fault_plan=plan,
            pool_config={"respawn_backoff": 0.01},
        )
        [scene_id] = service.registry.ids()
        vals = random_xor_valuations(N, K, seed=7)
        with pytest.raises(WorkerCrashError):
            service.submit(AuctionRequest(scene_id, K, vals, seed=2)).result(
                timeout=180
            )
        stats = service._pool.stats()
        assert stats["failed_batches"] == 1
        assert stats["restarts"] == 2  # initial attempt + one retry
        # the pool is healthy again: the next request is served normally
        ok = service.submit(AuctionRequest(scene_id, K, vals, seed=2))
        assert ok.result(timeout=180).feasible
        assert service.close(timeout=180)
        counts = service.metrics.counts()
        assert counts["failed"] == 1
        assert counts["completed"] == 1


class TestCircuitBreaker:
    def test_exhausted_respawn_budget_trips_breaker(self, scene):
        """Consecutive crashes beyond respawn_limit stop the respawn loop:
        the slot's breaker opens, further jobs fail typed (no routable
        worker left), and the pool reports itself unhealthy."""
        plan = FaultPlan(
            [FaultSpec(site="pool.worker.batch", kind="crash")]  # every batch
        )
        service = make_service(
            scene,
            num_shards=1,
            coalesce_window=0.0,
            worker_retries=0,
            fault_plan=plan,
            pool_config={
                "respawn_limit": 1,
                "respawn_backoff": 0.01,
                "breaker_cooldown": 60.0,
            },
        )
        [scene_id] = service.registry.ids()
        vals = random_xor_valuations(N, K, seed=11)
        for i in range(3):
            with pytest.raises(WorkerCrashError):
                service.submit(AuctionRequest(scene_id, K, vals, seed=i)).result(
                    timeout=180
                )
        stats = service._pool.stats()
        assert stats["breaker_trips"] == 1
        assert stats["restarts"] == 1  # one respawn, then the trip
        assert stats["failed_batches"] == 3
        assert stats["workers"][0]["breaker_open"]
        assert not stats["healthy"]
        assert not service.healthy()
        assert service.metrics.counts()["failed"] == 3
        assert service.close(timeout=180)  # a tripped slot closes cleanly

    def test_half_open_probe_recovers_after_cooldown(self, scene):
        """Once the cooldown elapses, one probe incarnation is allowed;
        a clean batch closes the breaker and resets the crash streak."""
        plan = FaultPlan(
            # only incarnation 0 crashes: the probe (incarnation 1) is clean
            [FaultSpec(site="pool.worker.batch", kind="crash", generations=(0,))]
        )
        service = make_service(
            scene,
            num_shards=1,
            coalesce_window=0.0,
            worker_retries=1,
            fault_plan=plan,
            pool_config={
                "respawn_limit": 0,  # first crash trips immediately
                "respawn_backoff": 0.01,
                "breaker_cooldown": 0.3,
            },
        )
        [scene_id] = service.registry.ids()
        vals = random_xor_valuations(N, K, seed=12)
        with pytest.raises(WorkerCrashError):
            service.submit(AuctionRequest(scene_id, K, vals, seed=1)).result(
                timeout=180
            )
        assert service._pool.stats()["workers"][0]["breaker_open"]
        time.sleep(0.4)  # past the cooldown: the next job probes the slot
        ok = service.submit(AuctionRequest(scene_id, K, vals, seed=2))
        assert ok.result(timeout=180).feasible
        stats = service._pool.stats()
        assert stats["breaker_trips"] == 1
        assert not stats["workers"][0]["breaker_open"]
        assert stats["workers"][0]["consecutive_failures"] == 0
        assert stats["healthy"]
        assert service.healthy()
        assert service.close(timeout=180)

    def test_open_breaker_routes_batches_to_surviving_worker(self, scene):
        """Routing skips breaker-open slots: a scene whose home shard is
        tripped is served by the surviving worker, not queued forever."""
        service = make_service(scene, num_shards=2, coalesce_window=0.0)
        [scene_id] = service.registry.ids()
        vals = random_xor_valuations(N, K, seed=13)
        service.submit(AuctionRequest(scene_id, K, vals, seed=1)).result(timeout=180)
        pool = service._pool
        home = pool.home_of(scene_id)
        handle = pool._workers[home]
        with pool._lock:  # trip the home shard's breaker by hand
            handle.process.terminate()
            handle.process.join(5.0)
            handle.process = None
            handle.conn = None
            handle.breaker_trips += 1
            handle.breaker_until = time.monotonic() + 60.0
        ok = service.submit(AuctionRequest(scene_id, K, vals, seed=2))
        assert ok.result(timeout=180).feasible
        stats = pool.stats()
        assert stats["workers"][home]["breaker_open"]
        assert stats["workers"][1 - home]["jobs"] >= 1
        assert not stats["healthy"]
        assert service.close(timeout=180)

    def test_injected_spawn_failure_is_absorbed_by_retry(self, scene):
        """A worker that dies *at spawn* (the respawn-storm case) is
        detected on first contact; the backoff respawn brings up a clean
        incarnation that serves the retried batch."""
        plan = FaultPlan(
            [FaultSpec(site="pool.worker.spawn", kind="crash", generations=(0,))]
        )
        service = make_service(
            scene,
            num_shards=1,
            coalesce_window=0.0,
            worker_retries=1,
            fault_plan=plan,
            pool_config={"respawn_backoff": 0.01},
        )
        [scene_id] = service.registry.ids()
        vals = random_xor_valuations(N, K, seed=14)
        reference = make_service(scene, executor="serial")
        expected = reference.solve_batch(
            [AuctionRequest(scene_id, K, vals, seed=3)]
        )[0]
        future = service.submit(AuctionRequest(scene_id, K, vals, seed=3))
        assert future.result(timeout=180).allocation == expected.allocation
        stats = service._pool.stats()
        assert stats["restarts"] == 1
        assert stats["retried_batches"] == 1
        assert stats["failed_batches"] == 0
        assert stats["healthy"]
        assert service.close(timeout=180)
        reference.close()


class TestSceneShippingAndStats:
    def test_spawn_snapshot_never_reships_and_new_scenes_ship_once(self, scene):
        service = make_service(scene, num_shards=2, coalesce_window=0.0)
        [scene_id] = service.registry.ids()
        vals = random_xor_valuations(N, K, seed=8)
        # registered before start: in every worker's spawn snapshot
        service.submit(AuctionRequest(scene_id, K, vals, seed=1)).result(timeout=180)
        assert service._pool.stats()["scenes_shipped"] == 0
        # registered after start: pickled across at most once per worker
        late = service.register_scene(metro_protocol_scene(N, seed=502))
        for i in range(3):
            service.submit(
                AuctionRequest(
                    late, K, random_xor_valuations(N, K, seed=30 + i), seed=i
                )
            ).result(timeout=180)
        shipped = service._pool.stats()["scenes_shipped"]
        assert 1 <= shipped <= service.num_shards
        # re-submitting the same scene ships nothing further
        service.submit(
            AuctionRequest(late, K, random_xor_valuations(N, K, seed=40), seed=9)
        ).result(timeout=180)
        assert service._pool.stats()["scenes_shipped"] == shipped
        assert service.close(timeout=180)

    def test_pool_accounting_in_metrics_snapshot(self, scene):
        service = make_service(scene, num_shards=2)
        trace = make_trace(service, num_requests=6)
        drive(service, trace)
        snap = service.metrics_snapshot()
        pool = snap["pool"]
        assert pool["num_workers"] == 2
        assert pool["start_method"] in ("forkserver", "spawn", "fork")
        assert pool["cores"] >= 1
        assert pool["ipc_bytes_sent"] > 0
        assert pool["ipc_bytes_received"] > 0
        assert pool["ipc_seconds"] >= 0.0
        assert len(pool["workers"]) == 2
        assert sum(w["jobs"] for w in pool["workers"]) >= 1
        # worker-side cache/warm accounting rides back on the replies
        worked = [w for w in pool["workers"] if w["jobs"]]
        assert all("caches" in w["worker_stats"] for w in worked)
        assert snap["config"]["executor"] == "process"
        assert snap["config"]["num_shards"] == 2
        assert snap["requests_completed"] == 6

    def test_routing_spills_away_from_busy_home(self, scene):
        """One hot scene must not serialize behind its home worker."""
        service = make_service(scene, num_shards=2)
        trace = make_trace(
            service, num_requests=8, repeat_fraction=0.0, unique_profiles=0
        )
        drive(service, trace)
        jobs = [w["jobs"] for w in service.metrics_snapshot()["pool"]["workers"]]
        assert sum(jobs) >= 2
        assert all(j > 0 for j in jobs), f"one worker sat idle: {jobs}"


class TestValidation:
    def test_bad_pool_options_rejected(self):
        with pytest.raises(ValueError):
            AuctionService(executor="process", worker_retries=-1)
        from repro.service.pool import ProcessShardPool
        from repro.service.scenes import SceneRegistry

        with pytest.raises(ValueError):
            ProcessShardPool(SceneRegistry(), 0)
        with pytest.raises(ValueError):
            ProcessShardPool(SceneRegistry(), 1, max_retries=-1)
        with pytest.raises(ValueError):
            ProcessShardPool(SceneRegistry(), 1, start_method="hologram")
        with pytest.raises(ValueError):
            ProcessShardPool(SceneRegistry(), 1, respawn_limit=-1)
        with pytest.raises(ValueError):
            ProcessShardPool(SceneRegistry(), 1, respawn_backoff=-0.1)
        with pytest.raises(ValueError):
            ProcessShardPool(SceneRegistry(), 1, breaker_cooldown=-1.0)

    def test_submit_requires_started_pool(self, scene):
        from repro.service.pool import ProcessShardPool
        from repro.service.scenes import SceneRegistry

        registry = SceneRegistry()
        registry.register(scene)
        pool = ProcessShardPool(registry, 1)
        with pytest.raises(RuntimeError):
            pool.submit("00", [])
        pool.close()
        with pytest.raises(RuntimeError):
            pool.submit("00", [])
