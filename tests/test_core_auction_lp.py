"""Tests for LP (1)/(4): construction, Lemma 1 embedding, decomposition."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.auction import AuctionProblem
from repro.core.auction_lp import AuctionLP, Column, allocation_to_lp_vector
from repro.graphs.conflict_graph import ConflictGraph, VertexOrdering
from repro.graphs.generators import clique
from repro.interference.base import ConflictStructure, WeightedConflictStructure
from repro.graphs.weighted_graph import WeightedConflictGraph
from repro.valuations.explicit import XORValuation


def tiny_problem(k=2, rho=1.0):
    # Path 0-1-2 with identity ordering; ρ(π) = 1.
    graph = ConflictGraph(3, [(0, 1), (1, 2)])
    structure = ConflictStructure(graph, VertexOrdering.identity(3), rho)
    vals = [
        XORValuation(k, {frozenset({0}): 2.0}),
        XORValuation(k, {frozenset({0}): 3.0}),
        XORValuation(k, {frozenset({0}): 2.0}),
    ]
    return AuctionProblem(structure, k, vals)


class TestAuctionLPConstruction:
    def test_columns_from_support(self):
        problem = tiny_problem()
        lp = AuctionLP(problem)
        assert len(lp.columns) == 3
        assert all(col.value > 0 for col in lp.columns)

    def test_duplicate_column_ignored(self):
        problem = tiny_problem()
        lp = AuctionLP(problem)
        before = len(lp.columns)
        assert not lp.add_column(Column(0, frozenset({0}), 2.0))
        assert len(lp.columns) == before

    def test_empty_bundle_rejected(self):
        problem = tiny_problem()
        lp = AuctionLP(problem)
        with pytest.raises(ValueError):
            lp.add_column(Column(0, frozenset(), 1.0))

    def test_matrix_shape(self):
        problem = tiny_problem(k=2)
        lp = AuctionLP(problem)
        a, b, c = lp.build()
        assert a.shape == (3 * 2 + 3, 3)
        assert b.shape == (9,)
        assert (b[:6] == 1.0).all()  # rho rows
        assert (b[6:] == 1.0).all()  # vertex rows

    def test_backward_only_interference(self):
        # Column for vertex 2 (π-last) must only hit rows of *later*
        # vertices — there are none, so its packing entries are empty.
        problem = tiny_problem()
        lp = AuctionLP(problem, columns=[Column(2, frozenset({0}), 1.0)])
        a, _, _ = lp.build()
        k, n = problem.k, problem.n
        packing_part = a.toarray()[: n * k]
        assert packing_part.sum() == 0.0

    def test_forward_interference_entries(self):
        # A column for vertex 0 contributes to neighbor 1's rows only.
        problem = tiny_problem()
        lp = AuctionLP(problem, columns=[Column(0, frozenset({0}), 1.0)])
        a, _, _ = lp.build()
        k = problem.k
        dense = a.toarray()
        assert dense[1 * k + 0, 0] == 1.0  # row (v=1, j=0)
        assert dense[2 * k + 0, 0] == 0.0  # vertex 2 not adjacent to 0


class TestLemma1:
    """Feasible allocations are LP-feasible (Lemma 1)."""

    def test_feasible_allocation_satisfies_lp(self, protocol_problem):
        from repro.core.solver import SpectrumAuctionSolver

        solver = SpectrumAuctionSolver(protocol_problem)
        result = solver.solve(seed=5, rounding_attempts=2)
        assert result.feasible
        lp = AuctionLP(protocol_problem)
        for v, bundle in result.allocation.items():
            if bundle and not lp.has_column(v, bundle):
                lp.add_column(
                    Column(v, bundle, protocol_problem.valuations[v].value(bundle))
                )
        x = allocation_to_lp_vector(lp, result.allocation)
        a, b, _ = lp.build()
        assert (a @ x <= b + 1e-9).all()

    def test_weighted_feasible_allocation_satisfies_lp(self, weighted_problem):
        from repro.core.solver import SpectrumAuctionSolver

        result = SpectrumAuctionSolver(weighted_problem).solve(seed=6)
        assert result.feasible
        lp = AuctionLP(weighted_problem)
        for v, bundle in result.allocation.items():
            if bundle and not lp.has_column(v, bundle):
                lp.add_column(
                    Column(v, bundle, weighted_problem.valuations[v].value(bundle))
                )
        x = allocation_to_lp_vector(lp, result.allocation)
        a, b, _ = lp.build()
        assert (a @ x <= b + 1e-9).all()

    def test_missing_column_raises(self):
        problem = tiny_problem()
        lp = AuctionLP(problem)
        with pytest.raises(KeyError):
            allocation_to_lp_vector(lp, {0: frozenset({1})})


class TestLPValues:
    def test_lp_upper_bounds_any_feasible_allocation(self):
        problem = tiny_problem()
        sol = AuctionLP(problem).solve()
        # Best feasible allocation: vertices 0 and 2 (value 4) — LP must
        # be at least that.
        assert sol.value >= 4.0 - 1e-9

    def test_lp_on_clique_rho1(self):
        # Clique with ρ = 1, k = 1: LP (1b) says each vertex's backward
        # clique neighbors carry total mass ≤ 1 — the LP value stays within
        # a constant of the best single bid (no n/2 clique gap, E10 shape).
        n = 6
        graph = clique(n)
        structure = ConflictStructure(graph, VertexOrdering.identity(n), 1.0)
        vals = [XORValuation(1, {frozenset({0}): 1.0}) for _ in range(n)]
        problem = AuctionProblem(structure, 1, vals)
        sol = AuctionLP(problem).solve()
        # x sums over backward neighbors ≤ 1 per vertex; the last vertex
        # sees everyone, so total mass ≤ 2 (it plus its backward bound).
        assert sol.value <= 2.0 + 1e-6

    def test_weighted_lp_uses_wbar(self):
        w = np.zeros((2, 2))
        w[0, 1] = 0.25
        w[1, 0] = 0.25
        structure = WeightedConflictStructure(
            WeightedConflictGraph(w), VertexOrdering.identity(2), rho=1.0
        )
        vals = [XORValuation(1, {frozenset({0}): 1.0}) for _ in range(2)]
        problem = AuctionProblem(structure, 1, vals)
        sol = AuctionLP(problem).solve()
        # w̄(0,1) = 0.5 ≤ ρ: both vertices can take full mass.
        assert sol.value == pytest.approx(2.0)

    def test_solution_support_grouping(self, protocol_problem):
        sol = AuctionLP(protocol_problem).solve()
        per_vertex = sol.per_vertex()
        for v, entries in per_vertex.items():
            mass = sum(x for _, x, _ in entries)
            assert mass <= 1.0 + 1e-7
