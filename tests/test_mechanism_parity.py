"""Reference-vs-compiled parity of the truthful-mechanism fast path (PR 5).

The compiled decomposition (``pricing="approx"``) must publish the *same*
distribution as the seed-era pipeline (``pricing="reference"``): the
exact-marginal guarantee  E[𝟙(v gets T)] = x*_{v,T}/α  holds on both, and
the pool, convex weights, keep probabilities — and therefore the sampled
allocations for fixed seeds — are bit-identical across disk, protocol,
weighted (physical), and distance-2 conflict models.  The ``"warm"``
profile is exempt from bit-parity by design (warm-started solves are not
vertex-pinned) but must keep the exact-marginal guarantee.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.auction import AuctionProblem
from repro.core.solver import SpectrumAuctionSolver
from repro.geometry.disks import random_disk_instance
from repro.geometry.links import random_links
from repro.interference.disk import disk_transmitter_model, distance2_coloring_model
from repro.interference.physical import linear_power, physical_model_structure
from repro.interference.protocol import protocol_model
from repro.mechanism.lavi_swamy import decompose_lp_solution
from repro.mechanism.truthful import TruthfulMechanism
from repro.valuations.generators import random_xor_valuations

MODELS = ["disk", "protocol", "physical", "distance2"]


def build_problem(model: str) -> AuctionProblem:
    if model == "disk":
        structure = disk_transmitter_model(random_disk_instance(14, seed=91))
        k, vseed = 3, 92
    elif model == "protocol":
        links = random_links(12, seed=81, length_range=(0.04, 0.12))
        structure = protocol_model(links, delta=1.0)
        k, vseed = 3, 82
    elif model == "physical":
        links = random_links(8, seed=83, length_range=(0.03, 0.1))
        structure = physical_model_structure(links, linear_power(links, 3.0))
        k, vseed = 2, 84
    else:
        structure = distance2_coloring_model(random_disk_instance(12, seed=95))
        k, vseed = 2, 96
    valuations = random_xor_valuations(
        structure.n, k, seed=vseed, bids_per_bidder=2
    )
    return AuctionProblem(structure, k, valuations)


@pytest.fixture(scope="module", params=MODELS)
def case(request):
    problem = build_problem(request.param)
    solution = SpectrumAuctionSolver(problem).solve_lp("explicit")
    reference = decompose_lp_solution(
        problem, solution, seed=5, pricing="reference"
    )
    compiled = decompose_lp_solution(problem, solution, seed=5, pricing="approx")
    return problem, solution, reference, compiled


class TestBitIdenticalDecomposition:
    def test_targets_identical(self, case):
        _, _, reference, compiled = case
        assert reference.target == compiled.target  # dict of floats, bit-equal

    def test_pool_identical(self, case):
        _, _, reference, compiled = case
        assert reference.allocations == compiled.allocations
        assert np.array_equal(reference.weights, compiled.weights)

    def test_keep_probabilities_identical(self, case):
        _, _, reference, compiled = case
        assert reference.keep_probability == compiled.keep_probability

    def test_iterations_identical(self, case):
        _, _, reference, compiled = case
        assert reference.iterations == compiled.iterations

    def test_sampled_allocations_identical_for_fixed_seeds(self, case):
        _, _, reference, compiled = case
        for seed in range(20):
            rng_a = np.random.default_rng(seed)
            rng_b = np.random.default_rng(seed)
            assert reference.sample(rng_a) == compiled.sample(rng_b)


class TestExactMarginalGuarantee:
    def test_both_paths_hit_targets(self, case):
        _, _, reference, compiled = case
        for dec in (reference, compiled):
            mass = dec.pair_mass()
            for pair, target in dec.target.items():
                assert mass[pair] == pytest.approx(target, abs=1e-9)

    def test_warm_profile_keeps_guarantee(self, case):
        problem, solution, _, _ = case
        warm = decompose_lp_solution(problem, solution, seed=5, pricing="warm")
        mass = warm.pair_mass()
        for pair, target in warm.target.items():
            assert mass[pair] == pytest.approx(target, abs=1e-7)
        for alloc in warm.allocations:
            assert problem.is_feasible(alloc)


class TestForcedPricingIterations:
    """Sub-gap α forces the pricing loop to run; parity must survive it."""

    @pytest.fixture(scope="class")
    def tight_case(self):
        from repro.experiments.workloads import metro_disk_auction

        problem = metro_disk_auction(80, 4, seed=11)
        solution = SpectrumAuctionSolver(problem).solve_lp("explicit")
        alpha = problem.approximation_bound() * 0.25
        reference = decompose_lp_solution(
            problem, solution, alpha=alpha, seed=5, pricing="reference"
        )
        compiled = decompose_lp_solution(
            problem, solution, alpha=alpha, seed=5, pricing="approx"
        )
        return reference, compiled

    def test_pricing_actually_iterated(self, tight_case):
        reference, _ = tight_case
        assert reference.iterations >= 3

    def test_bit_identical_under_iteration(self, tight_case):
        reference, compiled = tight_case
        assert reference.allocations == compiled.allocations
        assert np.array_equal(reference.weights, compiled.weights)
        assert reference.keep_probability == compiled.keep_probability


class TestMechanismEndToEnd:
    def test_fast_and_reference_outcomes_agree(self):
        problem = build_problem("protocol")
        fast = TruthfulMechanism(problem.structure, problem.k)
        slow = TruthfulMechanism(
            problem.structure, problem.k, pricing="reference"
        )
        out_fast = fast.run(problem.valuations, seed=17)
        out_slow = slow.run(problem.valuations, seed=17)
        assert out_fast.sampled_allocation == out_slow.sampled_allocation
        assert out_fast.decomposition.target == out_slow.decomposition.target
        np.testing.assert_allclose(
            out_fast.payments, out_slow.payments, atol=1e-6
        )

    def test_warm_vcg_matches_reference_values(self):
        from repro.mechanism.lavi_swamy import default_alpha
        from repro.mechanism.vcg import vcg_payments

        problem = build_problem("disk")
        solution = SpectrumAuctionSolver(problem).solve_lp("explicit")
        alpha = default_alpha(problem)
        warm = vcg_payments(problem, solution, alpha, method="warm")
        reference = vcg_payments(problem, solution, alpha, method="reference")
        np.testing.assert_allclose(warm.payments, reference.payments, atol=1e-6)
        np.testing.assert_allclose(
            warm.contributions, reference.contributions, atol=1e-9
        )

    def test_invalid_vcg_method_rejected(self):
        from repro.mechanism.vcg import vcg_payments

        problem = build_problem("disk")
        solution = SpectrumAuctionSolver(problem).solve_lp("explicit")
        with pytest.raises(ValueError):
            vcg_payments(problem, solution, 2.0, method="telepathy")

    def test_prepare_is_deterministic_and_run_samples_it(self):
        problem = build_problem("disk")
        mech = TruthfulMechanism(problem.structure, problem.k)
        a = mech.prepare(problem.valuations, seed=1)
        b = mech.prepare(problem.valuations, seed=2)  # seed only feeds escapes
        assert a.decomposition.target == b.decomposition.target
        assert a.decomposition.allocations == b.decomposition.allocations
        out = mech.run(problem.valuations, seed=3)
        assert problem.is_feasible(out.sampled_allocation)
