"""Tests for Algorithms 1 and 2 (randomized rounding + conflict resolution)."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.auction import AuctionProblem
from repro.core.auction_lp import AuctionLP
from repro.core.conflict_resolution import check_condition5
from repro.core.rounding import (
    default_scale,
    resolve_unweighted,
    resolve_weighted_partial,
    round_unweighted,
    round_weighted,
    sample_tentative,
)
from repro.graphs.conflict_graph import ConflictGraph, VertexOrdering
from repro.interference.base import ConflictStructure
from repro.valuations.explicit import XORValuation


class TestSampleTentative:
    def test_probabilities(self, rng):
        per_vertex = {0: [(frozenset({0}), 0.8, 1.0)]}
        hits = sum(
            1 for _ in range(4000) if sample_tentative(per_vertex, 2.0, rng)
        )
        assert 0.35 <= hits / 4000 <= 0.45  # expect 0.8/2 = 0.4

    def test_scale_validation(self, rng):
        with pytest.raises(ValueError):
            sample_tentative({}, 0.5, rng)

    def test_at_most_one_bundle(self, rng):
        per_vertex = {
            0: [(frozenset({0}), 0.5, 1.0), (frozenset({1}), 0.5, 1.0)]
        }
        for _ in range(100):
            t = sample_tentative(per_vertex, 1.0, rng)
            assert len(t) <= 1


class TestResolveUnweighted:
    def make_problem(self):
        graph = ConflictGraph(3, [(0, 1), (1, 2)])
        structure = ConflictStructure(graph, VertexOrdering.identity(3), 1.0)
        vals = [XORValuation(1, {frozenset({0}): float(i + 1)}) for i in range(3)]
        return AuctionProblem(structure, 1, vals)

    def test_earlier_vertex_wins(self):
        problem = self.make_problem()
        tentative = {0: frozenset({0}), 1: frozenset({0})}
        final, removed = resolve_unweighted(problem, tentative)
        assert final == {0: frozenset({0})}
        assert removed == 1

    def test_survivors_mode_keeps_more(self):
        # Chain 0-1-2 all sharing a channel: tentative mode removes 1 and 2
        # (2 conflicts with 1's tentative); survivors mode keeps 2 because
        # 1 was already removed.
        problem = self.make_problem()
        tentative = {v: frozenset({0}) for v in range(3)}
        surv, _ = resolve_unweighted(problem, tentative, "survivors")
        tent, _ = resolve_unweighted(problem, tentative, "tentative")
        assert set(surv) == {0, 2}
        assert set(tent) == {0}

    def test_both_modes_feasible(self, protocol_problem, rng):
        lp = AuctionLP(protocol_problem).solve()
        for mode in ("survivors", "tentative"):
            alloc, _ = round_unweighted(protocol_problem, lp, rng, resolve=mode)
            assert protocol_problem.is_feasible(alloc)

    def test_unknown_mode(self):
        problem = self.make_problem()
        with pytest.raises(ValueError):
            resolve_unweighted(problem, {}, "bogus")

    def test_disjoint_channels_no_conflict(self):
        problem = self.make_problem()
        # k=1 problem but bundles on different channels never conflict;
        # emulate with k=2 valuations via a fresh problem.
        graph = ConflictGraph(2, [(0, 1)])
        structure = ConflictStructure(graph, VertexOrdering.identity(2), 1.0)
        vals = [XORValuation(2, {frozenset({i}): 1.0}) for i in range(2)]
        p2 = AuctionProblem(structure, 2, vals)
        final, removed = resolve_unweighted(
            p2, {0: frozenset({0}), 1: frozenset({1})}
        )
        assert removed == 0 and len(final) == 2


class TestRoundUnweighted:
    def test_feasible_and_reported(self, protocol_problem, rng):
        lp = AuctionLP(protocol_problem).solve()
        alloc, report = round_unweighted(protocol_problem, lp, rng)
        assert protocol_problem.is_feasible(alloc)
        assert report.scale == pytest.approx(default_scale(protocol_problem))
        assert len(report.class_values) == 2

    def test_rejects_weighted(self, weighted_problem, rng):
        lp = AuctionLP(weighted_problem).solve()
        with pytest.raises(ValueError):
            round_unweighted(weighted_problem, lp, rng)

    def test_split_respects_bundle_sizes(self, protocol_problem, rng):
        lp = AuctionLP(protocol_problem).solve()
        threshold = math.sqrt(protocol_problem.k)
        from repro.core.rounding import _split_classes

        small, large = _split_classes(lp, protocol_problem.k, True)
        for entries in small.values():
            assert all(len(b) <= threshold for b, _, _ in entries)
        for entries in large.values():
            assert all(len(b) > threshold for b, _, _ in entries)

    def test_no_split_single_class(self, protocol_problem, rng):
        lp = AuctionLP(protocol_problem).solve()
        _, report = round_unweighted(protocol_problem, lp, rng, split=False)
        assert len(report.class_values) == 1

    def test_expectation_meets_theorem3(self, protocol_problem):
        """Average welfare over repetitions ≥ b*/(8√k ρ) (Theorem 3)."""
        lp = AuctionLP(protocol_problem).solve()
        rng = np.random.default_rng(0)
        k, rho = protocol_problem.k, protocol_problem.rho
        bound = lp.value / (8.0 * math.sqrt(k) * rho)
        values = []
        for _ in range(60):
            alloc, _ = round_unweighted(protocol_problem, lp, rng)
            values.append(protocol_problem.welfare(alloc))
        assert float(np.mean(values)) >= bound


class TestRoundWeighted:
    def test_partly_feasible_output(self, weighted_problem, rng):
        lp = AuctionLP(weighted_problem).solve()
        for mode in ("survivors", "tentative"):
            alloc, _ = round_weighted(weighted_problem, lp, rng, resolve=mode)
            assert check_condition5(weighted_problem, alloc)

    def test_rejects_unweighted(self, protocol_problem, rng):
        lp = AuctionLP(protocol_problem).solve()
        with pytest.raises(ValueError):
            round_weighted(protocol_problem, lp, rng)

    def test_scale_doubles(self, weighted_problem):
        assert default_scale(weighted_problem) == pytest.approx(
            4.0 * math.sqrt(weighted_problem.k) * weighted_problem.rho
        )

    def test_resolution_threshold_half(self):
        # Earlier vertex with w̄ = 0.6 ≥ 1/2 forces removal; 0.4 does not.
        from repro.graphs.weighted_graph import WeightedConflictGraph
        from repro.interference.base import WeightedConflictStructure

        for w01, expect_kept in ((0.6, 1), (0.4, 2)):
            w = np.zeros((2, 2))
            w[0, 1] = w01
            structure = WeightedConflictStructure(
                WeightedConflictGraph(w), VertexOrdering.identity(2), 1.0
            )
            vals = [XORValuation(1, {frozenset({0}): 1.0}) for _ in range(2)]
            problem = AuctionProblem(structure, 1, vals)
            tentative = {0: frozenset({0}), 1: frozenset({0})}
            final, _ = resolve_weighted_partial(problem, tentative)
            assert len(final) == expect_kept
