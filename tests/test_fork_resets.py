"""Fork-reset registry contract (repro.util.mp) and the invariants it
protects: the HiGHS backend registers its reset hook at import, workers
can require it at spawn, and scene fingerprinting never mutates the
shared structure it hashes."""

from __future__ import annotations

from types import SimpleNamespace

import numpy as np
import pytest
import scipy.sparse as sp

from repro.util.mp import (
    register_fork_reset,
    registered_fork_resets,
    run_fork_resets,
)


def _pop_hooks(*names: str) -> None:
    # the registry has no public unregister (production hooks live for
    # the process); tests clean up their uniquely-named entries directly
    from repro.util import mp

    with mp._RESET_REGISTRY_LOCK:
        for name in names:
            mp._fork_resets.pop(name, None)


def test_register_and_run_round_trip():
    calls: list[str] = []
    try:
        register_fork_reset("test.hook.a", lambda: calls.append("a"))
        register_fork_reset("test.hook.b", lambda: calls.append("b"))
        assert "test.hook.a" in registered_fork_resets()
        ran = run_fork_resets()
        assert ("test.hook.a", "test.hook.b") == tuple(
            n for n in ran if n.startswith("test.hook.")
        )
        assert calls == sorted(calls)  # hooks run in sorted-name order
        assert "a" in calls and "b" in calls
    finally:
        _pop_hooks("test.hook.a", "test.hook.b")


def test_reregistering_same_name_replaces_not_accumulates():
    first: list[int] = []
    second: list[int] = []
    try:
        register_fork_reset("test.hook.idem", lambda: first.append(1))
        register_fork_reset("test.hook.idem", lambda: second.append(1))
        assert registered_fork_resets().count("test.hook.idem") == 1
        run_fork_resets()
        # idempotent-by-name: a module reload replaces its hook rather
        # than running two copies
        assert first == [] and second == [1]
    finally:
        _pop_hooks("test.hook.idem")


def test_require_missing_hook_raises():
    with pytest.raises(RuntimeError, match="test.hook.definitely-absent"):
        run_fork_resets(require=("test.hook.definitely-absent",))


def test_highs_backend_registers_its_hook_on_import():
    import repro.engine.highs  # noqa: F401  (import side effect under test)

    assert "repro.engine.highs" in registered_fork_resets()
    # the hook the pool worker requires at spawn actually runs
    assert "repro.engine.highs" in run_fork_resets(require=("repro.engine.highs",))


def test_highs_reset_clears_thread_state():
    from repro.engine import highs

    # simulate fork-inherited state: a stale instance map and a loaded
    # warm-start record pointing at a parent-lifetime model
    highs._local.instances = {"simplex": object()}
    highs._local.loaded = ("stale-key", None, None)
    run_fork_resets(require=("repro.engine.highs",))
    assert not hasattr(highs._local, "instances")
    assert not hasattr(highs._local, "loaded")


def _unsorted_structure() -> SimpleNamespace:
    # CSR with deliberately unsorted column indices within row 0
    indptr = np.array([0, 2, 2, 2])
    indices = np.array([2, 1])
    data = np.array([1.0, 1.0])
    csr = sp.csr_matrix((data, indices, indptr), shape=(3, 3))
    assert not csr.has_sorted_indices
    return SimpleNamespace(
        n=3,
        rho=1.0,
        ordering=SimpleNamespace(perm=np.array([0, 1, 2])),
        graph=SimpleNamespace(csr=csr),
    )


def test_scene_fingerprint_does_not_mutate_shared_structure():
    from repro.service.scenes import scene_fingerprint

    structure = _unsorted_structure()
    before = structure.graph.csr.indices.copy()
    fp = scene_fingerprint(structure)
    assert isinstance(fp, str) and len(fp) == 16
    # hashing must not sort the shared matrix in place: a concurrent
    # solver thread may be reading it (this is the bug reprolint's
    # kernel-mutation rule exists to catch)
    assert not structure.graph.csr.has_sorted_indices
    np.testing.assert_array_equal(structure.graph.csr.indices, before)
    # and the fingerprint is canonical: the sorted twin hashes the same
    sorted_structure = _unsorted_structure()
    sorted_structure.graph.csr.sort_indices()
    assert scene_fingerprint(sorted_structure) == fp
