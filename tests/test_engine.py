"""Batch engine behavior: determinism, caching, executors, fast LP backend."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.auction import AuctionProblem
from repro.core.lp import solve_packing_lp
from repro.core.solver import SpectrumAuctionSolver
from repro.engine import (
    BatchAuctionEngine,
    compile_auction,
    compile_structure,
    fast_backend_available,
    solve_packing_lp_fast,
    structure_cache_stats,
)
from repro.experiments.workloads import (
    physical_auction,
    protocol_auction,
    protocol_auction_fleet,
)
from repro.valuations.generators import random_xor_valuations


@pytest.fixture()
def small_fleet():
    """Six distinct problems over two shared structures, plus two repeats."""
    fleet = protocol_auction_fleet(2, 3, 12, 3, seed=6001)
    return fleet + [fleet[0], fleet[3]]


def _results_equal(a, b):
    return all(
        x.allocation == y.allocation
        and x.welfare == y.welfare
        and x.lp_value == y.lp_value
        and x.feasible == y.feasible
        for x, y in zip(a.results, b.results)
    )


class TestBatchEngine:
    def test_serial_deterministic(self, small_fleet):
        engine = BatchAuctionEngine(executor="serial")
        first = engine.solve_many(small_fleet, seed=17)
        second = engine.solve_many(small_fleet, seed=17)
        assert _results_equal(first, second)

    def test_serial_thread_process_identical(self, small_fleet):
        serial = BatchAuctionEngine(executor="serial").solve_many(small_fleet, seed=17)
        thread = BatchAuctionEngine(executor="thread", max_workers=4).solve_many(
            small_fleet, seed=17
        )
        assert _results_equal(serial, thread)
        process = BatchAuctionEngine(executor="process", max_workers=2).solve_many(
            small_fleet, seed=17
        )
        assert _results_equal(serial, process)

    def test_repeated_problems_share_lp_solves(self, small_fleet):
        batch = BatchAuctionEngine(executor="serial").solve_many(small_fleet, seed=3)
        assert batch.n_instances == 8
        assert batch.unique_problems == 6
        assert batch.lp_solves == 6

    def test_matches_individual_solver(self, small_fleet):
        batch = BatchAuctionEngine(executor="serial").solve_many(small_fleet, seed=23)
        seeds = np.random.SeedSequence(23).spawn(len(small_fleet))
        for problem, child, result in zip(small_fleet, seeds, batch.results):
            solo = SpectrumAuctionSolver(problem).solve(seed=child)
            assert solo.allocation == result.allocation
            assert solo.welfare == result.welfare

    def test_spec_callables(self):
        specs = [lambda i=i: protocol_auction(10, 2, seed=7000 + i) for i in range(3)]
        batch = BatchAuctionEngine(executor="serial").solve_many(specs, seed=5)
        assert batch.n_instances == 3
        assert all(r.feasible for r in batch.results)

    def test_generator_input(self):
        batch = BatchAuctionEngine(executor="serial").solve_many(
            (protocol_auction(10, 2, seed=7100 + i) for i in range(3)), seed=5
        )
        assert batch.n_instances == 3

    def test_summary_fields(self, small_fleet):
        batch = BatchAuctionEngine(executor="serial").solve_many(small_fleet, seed=2)
        assert batch.summary["n_instances"] == 8
        assert batch.summary["total_welfare"] == pytest.approx(batch.total_welfare)
        assert 0.0 <= batch.guarantee_met_fraction <= 1.0
        assert batch.wall_time > 0

    def test_empty_batch(self):
        batch = BatchAuctionEngine(executor="serial").solve_many([], seed=1)
        assert batch.n_instances == 0

    def test_rejects_unknown_executor(self):
        with pytest.raises(ValueError):
            BatchAuctionEngine(executor="gpu")

    def test_rejects_non_problem(self):
        with pytest.raises(TypeError):
            BatchAuctionEngine(executor="serial").solve_many([42], seed=1)

    def test_derandomized_batch(self, small_fleet):
        engine = BatchAuctionEngine(executor="serial", derandomize=True)
        a = engine.solve_many(small_fleet[:3], seed=None)
        b = engine.solve_many(small_fleet[:3], seed=None)
        assert _results_equal(a, b)  # deterministic even without a seed

    def test_weighted_batch(self):
        problems = [physical_auction(10, 2, seed=7200 + i) for i in range(3)]
        batch = BatchAuctionEngine(executor="serial").solve_many(problems, seed=8)
        assert all(r.feasible for r in batch.results)


class TestCompilationCache:
    def test_compile_auction_identity_cached(self):
        problem = protocol_auction(10, 2, seed=7300)
        assert compile_auction(problem) is compile_auction(problem)

    def test_structures_shared_across_problems(self):
        base = protocol_auction(10, 2, seed=7301)
        other = AuctionProblem(
            base.structure, 2, random_xor_valuations(10, 2, seed=7302)
        )
        assert compile_auction(base).structure is compile_auction(other).structure

    def test_structure_cache_stats_move(self):
        before = structure_cache_stats()
        problem = protocol_auction(10, 2, seed=7303)
        compile_structure(problem.structure)
        compile_structure(problem.structure)
        after = structure_cache_stats()
        assert after["misses"] == before["misses"] + 1
        assert after["hits"] >= before["hits"] + 1

    def test_repeat_solves_consistent_and_single_lp(self):
        problem = protocol_auction(12, 3, seed=7304)
        compiled = compile_auction(problem)
        first = compiled.solve(seed=5)
        second = compiled.solve(seed=5)
        third = compiled.solve(seed=6)
        assert first.allocation == second.allocation
        assert first.welfare == second.welfare
        assert third.lp_value == first.lp_value
        assert compiled.lp_solve_count == 1

    def test_lp_solution_object_stable(self):
        compiled = compile_auction(protocol_auction(12, 3, seed=7305))
        assert compiled.solve_lp() is compiled.solve_lp()


class TestLpSolutionArgument:
    def test_precomputed_lp_reused(self):
        problem = protocol_auction(12, 3, seed=7400)
        solver = SpectrumAuctionSolver(problem)
        lp = solver.solve_lp()
        with_precomputed = solver.solve(seed=9, lp_solution=lp)
        without = solver.solve(seed=9)
        assert with_precomputed.allocation == without.allocation
        assert with_precomputed.welfare == without.welfare
        assert solver.compiled.lp_solve_count == 1  # never re-solved

    def test_repeat_rounding_loop_single_lp(self):
        problem = protocol_auction(12, 3, seed=7401)
        solver = SpectrumAuctionSolver(problem)
        lp = solver.solve_lp()
        results = [solver.solve(seed=s, lp_solution=lp) for s in range(5)]
        assert solver.compiled.lp_solve_count == 1
        assert all(r.lp_value == lp.value for r in results)


class TestFastLPBackend:
    def test_backend_available_here(self):
        # scipy in this environment exposes the private HiGHS bindings;
        # if this ever fails the engine silently falls back to linprog
        assert fast_backend_available()

    def test_matches_reference_on_random_packing_lps(self):
        rng = np.random.default_rng(7500)
        import scipy.sparse as sp

        for _ in range(5):
            m, n = 30, 20
            a = sp.random(m, n, density=0.3, random_state=rng, format="csc")
            b = rng.uniform(1.0, 5.0, size=m)
            c = rng.uniform(0.1, 2.0, size=n)
            ref = solve_packing_lp(c, a.tocsr(), b)
            fast = solve_packing_lp_fast(c, a, b)
            assert fast.value == pytest.approx(ref.value, rel=1e-9)
            assert np.allclose(fast.x, ref.x, atol=1e-9)
            assert np.allclose(fast.duals, ref.duals, atol=1e-8)

    def test_shape_mismatch_rejected(self):
        import scipy.sparse as sp

        with pytest.raises(ValueError):
            solve_packing_lp_fast(
                np.ones(3), sp.csc_matrix(np.ones((2, 2))), np.ones(2)
            )


class TestMismatchedLpSolution:
    def test_foreign_solution_rejected(self):
        a = protocol_auction(10, 2, seed=7600)
        b = protocol_auction(12, 3, seed=7601)
        lp_b = SpectrumAuctionSolver(b).solve_lp()
        with pytest.raises(ValueError, match="does not belong"):
            SpectrumAuctionSolver(a).solve(seed=0, lp_solution=lp_b)


class TestOracleOnlyBidders:
    """Demand-oracle-only valuations (no finite support, large k) must still
    solve through column generation — compilation defers column enumeration."""

    def _oracle_problem(self, k=12):
        from repro.valuations.generators import random_additive_valuations

        problem = protocol_auction(6, 2, seed=7700)
        vals = random_additive_valuations(6, k, seed=7701)
        return AuctionProblem(problem.structure, k, vals)

    def test_solve_routes_through_column_generation(self):
        problem = self._oracle_problem()
        result = SpectrumAuctionSolver(problem).solve(seed=3)
        assert result.feasible
        assert result.lp_value > 0

    def test_explicit_method_still_rejected(self):
        problem = self._oracle_problem()
        with pytest.raises(ValueError, match="no finite support"):
            SpectrumAuctionSolver(problem).solve_lp("explicit")

    def test_bogus_lp_method_rejected_even_with_lp_solution(self):
        problem = protocol_auction(10, 2, seed=7702)
        solver = SpectrumAuctionSolver(problem)
        lp = solver.solve_lp()
        with pytest.raises(ValueError, match="unknown LP method"):
            solver.solve(seed=1, lp_method="colgen", lp_solution=lp)
