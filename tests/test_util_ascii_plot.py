"""Tests for the ASCII bar-chart helper."""

from __future__ import annotations

import pytest

from repro.util.ascii_plot import bar_chart


class TestBarChart:
    def test_basic_render(self):
        out = bar_chart(["a", "bb"], [1.0, 2.0], width=10)
        lines = out.splitlines()
        assert len(lines) == 2
        assert lines[1].count("#") == 10  # max value spans full width
        assert lines[0].count("#") == 5

    def test_title(self):
        out = bar_chart(["x"], [1.0], title="my chart")
        assert out.splitlines()[0] == "my chart"

    def test_labels_aligned(self):
        out = bar_chart(["a", "long"], [1.0, 1.0])
        lines = out.splitlines()
        assert lines[0].index("|") == lines[1].index("|")

    def test_zero_values(self):
        out = bar_chart(["z"], [0.0])
        assert "#" not in out
        assert "0" in out

    def test_empty(self):
        assert "(no data)" in bar_chart([], [])

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            bar_chart(["a"], [1.0, 2.0])

    def test_width_validation(self):
        with pytest.raises(ValueError):
            bar_chart(["a"], [1.0], width=0)

    def test_values_annotated(self):
        out = bar_chart(["a"], [3.25])
        assert "3.25" in out
