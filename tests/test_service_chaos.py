"""Scenario library + chaos runner: schema, invariants, replay fidelity.

These tests drive small *serial* scenarios so they stay fast and free of
process-spawn cost; the process-pool scenarios (crash_storm,
slow_worker_brownout) run at full size in benchmarks/bench_chaos.py and
the CI chaos-smoke job, and their crash mechanics are pinned per-site in
test_service_pool.py.
"""

from __future__ import annotations

import dataclasses
import json

import pytest

from repro.service import (
    ChaosReport,
    FaultPlan,
    FaultSpec,
    Scenario,
    run_matrix,
    run_scenario,
    scenario_library,
)


def tiny(scenario: Scenario, n: int = 16, **overrides) -> Scenario:
    """A scaled-down copy of a library scenario (small trace, tiny scenes)."""
    return dataclasses.replace(
        scenario, num_requests=n, scene_size=12, num_scenes=1, **overrides
    )


class TestScenarioSchema:
    def test_validation(self):
        with pytest.raises(ValueError, match="scene_family"):
            Scenario(name="x", description="", scene_family="lunar")
        with pytest.raises(ValueError, match="traffic"):
            Scenario(name="x", description="", traffic="tsunami")
        with pytest.raises(ValueError, match="out of range"):
            Scenario(name="x", description="", num_scenes=0)

    def test_dict_round_trip_preserves_fault_plan(self):
        scenario = scenario_library()["crash_storm"]
        data = scenario.to_dict()
        json.dumps(data)  # the whole scenario is JSON-serializable
        clone = Scenario.from_dict(data)
        assert clone.name == scenario.name
        assert clone.service == scenario.service
        assert clone.fault_plan is not None
        assert clone.fault_plan.seed == scenario.fault_plan.seed
        assert clone.fault_plan.specs == scenario.fault_plan.specs

    def test_library_contents(self):
        library = scenario_library()
        assert set(library) == {
            "dense_metro",
            "flash_crowd_burst",
            "distinct_adversarial",
            "crash_storm",
            "flaky_network",
            "gateway_partition",
            "slow_worker_brownout",
        }
        assert library["flash_crowd_burst"].service["max_queue"] == 64
        storm = library["crash_storm"]
        assert storm.num_requests == 300
        assert storm.service["executor"] == "process"
        assert any(
            spec.site == "pool.worker.batch" and spec.kind == "crash"
            for spec in storm.fault_plan
        )
        brownout = library["slow_worker_brownout"]
        assert all(spec.kind == "slow" for spec in brownout.fault_plan)

    def test_builders_are_deterministic(self):
        scenario = tiny(scenario_library()["dense_metro"])
        registry, scene_ids = scenario.build_registry()
        registry2, scene_ids2 = scenario.build_registry()
        assert scene_ids == scene_ids2  # content-hash ids: same scenes
        trace = scenario.build_trace(registry, scene_ids)
        trace2 = scenario.build_trace(registry2, scene_ids2)
        assert len(trace) == scenario.num_requests
        assert [item.request.seed for item in trace] == [
            item.request.seed for item in trace2
        ]

    def test_build_service_override_precedence(self):
        scenario = tiny(scenario_library()["dense_metro"])
        registry, _ = scenario.build_registry()
        service = scenario.build_service(registry, max_queue=5)
        assert service.executor == "serial"  # from the scenario's dict
        assert service.max_queue == 5  # the override wins
        service.close()


class TestRunScenario:
    def test_fault_free_scenario_is_clean(self):
        report = run_scenario(tiny(scenario_library()["dense_metro"], n=20))
        assert report.ok(), report.invariants
        assert report.accepted == 20
        assert report.completed == 20
        assert report.shed == 0
        assert report.completion_rate == 1.0
        assert report.failed_untyped == 0
        assert report.replay_mismatches == 0
        assert report.p99_seconds is not None

    def test_overloaded_burst_sheds_typed_and_accepted_complete(self):
        base = scenario_library()["flash_crowd_burst"]
        scenario = tiny(base, n=48)
        scenario = dataclasses.replace(
            scenario, service={**scenario.service, "max_queue": 4}
        )
        report = run_scenario(scenario)
        assert report.ok(), report.invariants
        assert report.shed > 0  # 16-wide bursts against a queue of 4
        assert report.accepted + report.shed == 48
        assert report.completed == report.accepted  # shed ≠ dropped
        assert report.to_dict()["invariants"]["accounted"]

    def test_injected_errors_fail_typed_and_replay_stays_identical(self):
        scenario = tiny(scenario_library()["dense_metro"], n=24)
        plan = FaultPlan(
            [FaultSpec(site="service.solve", kind="error", probability=0.3)],
            seed=5,
        )
        report = run_scenario(scenario, fault_plan=plan)
        assert report.ok(), report.invariants
        assert 0 < report.failed_typed < report.accepted
        assert report.completed + report.failed_typed == report.accepted
        # one fired error fails its whole coalesced group, so activations
        # lower-bound but need not equal the failed-request count
        assert 1 <= report.fired["service.solve:error"] <= report.failed_typed
        assert report.fault_plan == plan.to_dict()

    def test_fault_plan_override_none_runs_fault_free(self):
        scenario = tiny(scenario_library()["dense_metro"], n=12)
        plan = FaultPlan([FaultSpec(site="service.solve", kind="error")])
        armed = dataclasses.replace(scenario, fault_plan=plan)
        report = run_scenario(armed, fault_plan=None)
        assert report.fault_plan is None
        assert report.failed_typed == 0 and report.completed == 12

    def test_check_replay_false_skips_reference_run(self):
        report = run_scenario(
            tiny(scenario_library()["distinct_adversarial"], n=10),
            check_replay=False,
        )
        assert report.ok()
        assert report.replay_mismatches == 0

    def test_run_matrix_crosses_scenarios_and_plans(self):
        scenarios = [
            tiny(scenario_library()["dense_metro"], n=8),
            tiny(scenario_library()["flash_crowd_burst"], n=8),
        ]
        plans = [None, FaultPlan([FaultSpec(site="service.solve", kind="error")])]
        reports = run_matrix(scenarios, plans, check_replay=False)
        assert len(reports) == 4
        assert [r.scenario for r in reports] == [
            "dense_metro",
            "dense_metro",
            "flash_crowd_burst",
            "flash_crowd_burst",
        ]
        # the armed runs fail everything typed; the fault-free runs nothing
        assert reports[0].failed_typed == 0
        assert reports[1].failed_typed == reports[1].accepted
        assert all(r.invariants["typed_failures_only"] for r in reports)


class TestChaosReport:
    def test_completion_rate_with_zero_accepted(self):
        report = ChaosReport(
            scenario="empty",
            fault_plan=None,
            accepted=0,
            shed=3,
            completed=0,
            degraded=0,
            failed_typed=0,
            failed_untyped=0,
            replay_mismatches=0,
            pool_healthy=True,
            p99_seconds=None,
        )
        assert report.completion_rate == 1.0
        assert report.ok()  # no invariants recorded → vacuously true
        assert json.dumps(report.to_dict())
