"""Tests for the scheduling extension (partition all bidders into channels)."""

from __future__ import annotations

import pytest

from repro.core.scheduling import Schedule, schedule_all
from repro.geometry.disks import random_disk_instance
from repro.geometry.links import random_links
from repro.graphs.conflict_graph import VertexOrdering
from repro.graphs.generators import clique, empty_graph
from repro.interference.base import ConflictStructure
from repro.interference.disk import disk_transmitter_model
from repro.interference.physical import linear_power, physical_model_structure
from repro.interference.protocol import protocol_model


class TestScheduleAll:
    def test_protocol_model(self):
        links = random_links(25, seed=401, length_range=(0.02, 0.08))
        structure = protocol_model(links, 1.0)
        schedule = schedule_all(structure)
        assert schedule.validate(structure.graph)

    def test_disk_model(self):
        inst = random_disk_instance(30, seed=402)
        structure = disk_transmitter_model(inst)
        schedule = schedule_all(structure)
        assert schedule.validate(structure.graph)
        # A disk graph is (ρ+1)-inductive colorable-ish: classes stay small
        # relative to n (sanity shape check, not a theorem).
        assert schedule.num_channels <= structure.graph.max_degree() + 1

    def test_weighted_physical(self):
        links = random_links(15, seed=403, length_range=(0.02, 0.08))
        structure = physical_model_structure(links, linear_power(links, 3.0))
        schedule = schedule_all(structure)
        assert schedule.validate(structure.graph)

    def test_clique_needs_n_channels(self):
        structure = ConflictStructure(clique(6), VertexOrdering.identity(6), 1.0)
        schedule = schedule_all(structure)
        assert schedule.num_channels == 6

    def test_empty_graph_one_channel(self):
        structure = ConflictStructure(empty_graph(8), VertexOrdering.identity(8), 0.0)
        schedule = schedule_all(structure)
        assert schedule.num_channels == 1
        assert schedule.classes[0] == list(range(8))

    def test_channel_of_mapping(self):
        links = random_links(12, seed=404, length_range=(0.03, 0.1))
        structure = protocol_model(links, 1.0)
        schedule = schedule_all(structure)
        mapping = schedule.channel_of()
        assert sorted(mapping) == list(range(12))

    def test_validate_rejects_overlap(self):
        structure = ConflictStructure(empty_graph(3), VertexOrdering.identity(3), 0.0)
        bad = Schedule(classes=[[0, 1], [1, 2]])
        assert not bad.validate(structure.graph)

    def test_validate_rejects_conflicts(self):
        structure = ConflictStructure(clique(3), VertexOrdering.identity(3), 1.0)
        bad = Schedule(classes=[[0, 1], [2]])
        assert not bad.validate(structure.graph)

    def test_type_check(self):
        with pytest.raises(TypeError):
            schedule_all("not a structure")
