"""Tests for demand-oracle column generation (Section 2.2)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.auction import AuctionProblem
from repro.core.auction_lp import AuctionLP
from repro.core.column_generation import (
    bidder_prices,
    solve_with_column_generation,
)
from repro.valuations.generators import (
    random_additive_valuations,
    random_capped_additive_valuations,
    random_unit_demand_valuations,
    random_xor_valuations,
)


class TestBidderPrices:
    def test_prices_nonnegative(self, protocol_problem):
        sol = AuctionLP(protocol_problem).solve()
        prices = bidder_prices(protocol_problem, sol.y)
        assert prices.shape == (protocol_problem.n, protocol_problem.k)
        assert (prices >= -1e-12).all()

    def test_pi_last_vertex_has_zero_prices(self, protocol_problem):
        # The π-largest vertex appears in no one's backward neighborhood,
        # so no dual flows back to it... (it has no *later* vertices).
        sol = AuctionLP(protocol_problem).solve()
        prices = bidder_prices(protocol_problem, sol.y)
        last = int(protocol_problem.ordering.perm[-1])
        assert np.allclose(prices[last], 0.0)


class TestColumnGeneration:
    @pytest.mark.parametrize(
        "factory",
        [
            random_additive_valuations,
            random_unit_demand_valuations,
            random_capped_additive_valuations,
            random_xor_valuations,
        ],
    )
    def test_matches_explicit_lp(self, protocol_structure, factory):
        k = 4
        vals = factory(protocol_structure.n, k, seed=31)
        problem = AuctionProblem(protocol_structure, k, vals)
        cg = solve_with_column_generation(problem)
        explicit = AuctionLP(problem).solve()
        assert cg.converged
        assert cg.solution.value == pytest.approx(explicit.value, rel=1e-6)

    def test_matches_explicit_weighted(self, physical_structure):
        k = 3
        vals = random_additive_valuations(physical_structure.n, k, seed=32)
        problem = AuctionProblem(physical_structure, k, vals)
        cg = solve_with_column_generation(problem)
        explicit = AuctionLP(problem).solve()
        assert cg.converged
        assert cg.solution.value == pytest.approx(explicit.value, rel=1e-6)

    def test_large_k_beyond_enumeration(self, protocol_structure):
        # k = 24: 2^24 bundles — explicit enumeration impossible, oracle fine.
        k = 24
        vals = random_additive_valuations(protocol_structure.n, k, seed=33)
        problem = AuctionProblem(protocol_structure, k, vals)
        with pytest.raises(ValueError):
            AuctionLP.default_columns(problem)
        cg = solve_with_column_generation(problem)
        assert cg.converged
        assert cg.solution.value > 0

    def test_oracle_call_accounting(self, protocol_structure):
        vals = random_additive_valuations(protocol_structure.n, 4, seed=34)
        problem = AuctionProblem(protocol_structure, 4, vals)
        cg = solve_with_column_generation(problem)
        # At least one seeding call and one verification pass per bidder.
        assert cg.oracle_calls >= 2 * problem.n

    def test_columns_grow_only_when_violated(self, protocol_structure):
        vals = random_xor_valuations(protocol_structure.n, 4, seed=35)
        problem = AuctionProblem(protocol_structure, 4, vals)
        cg = solve_with_column_generation(problem)
        explicit_cols = len(AuctionLP(problem).columns)
        generated_cols = cg.columns_generated + problem.n  # seeds
        assert generated_cols <= explicit_cols + problem.n

    def test_duality_certificate(self, protocol_structure):
        """At convergence no bidder's demand exceeds z_v: dual feasibility."""
        vals = random_additive_valuations(protocol_structure.n, 4, seed=36)
        problem = AuctionProblem(protocol_structure, 4, vals)
        cg = solve_with_column_generation(problem)
        prices = bidder_prices(problem, cg.solution.y)
        for v, valuation in enumerate(problem.valuations):
            _, util = valuation.demand(prices[v])
            assert util <= cg.solution.z[v] + 1e-6
