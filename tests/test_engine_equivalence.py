"""Engine-vs-seed-pipeline equivalence.

The engine's contract is *bit-for-bit* agreement with the seed pipeline:
same LP matrices, same LP solutions, same RNG draw order, same conflict
resolutions, same tie-breaking.  Every test here compares the engine
against the original implementations (which remain in the tree as the
paper-faithful reference).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.auction_lp import AuctionLP
from repro.core.conflict_resolution import make_fully_feasible
from repro.core.rounding import round_unweighted, round_weighted
from repro.engine import (
    CompiledAuction,
    compile_auction,
    round_batch,
    stack_draws,
)
from repro.engine.vectorized import build_rounding_plan
from repro.experiments.workloads import physical_auction, protocol_auction
from repro.util.rng import ensure_rng, spawn_rngs


@pytest.fixture(scope="module")
def unweighted_problem():
    return protocol_auction(25, 4, seed=4001)


@pytest.fixture(scope="module")
def weighted_problem_big():
    return physical_auction(20, 4, seed=4002)


def legacy_solve(problem, seed, attempts=1):
    """The seed ``SpectrumAuctionSolver.solve`` randomized path, verbatim."""
    rng = ensure_rng(seed)
    solution = AuctionLP(problem).solve()
    best_alloc, best_welfare, rounds_alg3 = {}, -1.0, 0
    for _ in range(attempts):
        if problem.is_weighted:
            partly, _ = round_weighted(problem, solution, rng)
            res = make_fully_feasible(problem, partly)
            allocation, rounds = res.allocation, res.rounds
        else:
            allocation, _ = round_unweighted(problem, solution, rng)
            rounds = 0
        welfare = problem.welfare(allocation)
        if welfare > best_welfare:
            best_alloc, best_welfare, rounds_alg3 = allocation, welfare, rounds
    return best_alloc, max(best_welfare, 0.0), rounds_alg3


class TestLPEquivalence:
    @pytest.mark.parametrize("problem_fixture", ["unweighted_problem", "weighted_problem_big"])
    def test_build_matches_auction_lp(self, problem_fixture, request):
        problem = request.getfixturevalue(problem_fixture)
        a_ref, b_ref, c_ref = AuctionLP(problem).build()
        a_eng, b_eng, c_eng = CompiledAuction(problem).build()
        assert (a_ref != a_eng).nnz == 0
        assert np.array_equal(a_ref.toarray(), a_eng.toarray())
        assert np.array_equal(b_ref, b_eng)
        assert np.array_equal(c_ref, c_eng)

    @pytest.mark.parametrize("problem_fixture", ["unweighted_problem", "weighted_problem_big"])
    def test_lp_solution_bit_identical(self, problem_fixture, request):
        problem = request.getfixturevalue(problem_fixture)
        ref = AuctionLP(problem).solve()
        eng = CompiledAuction(problem).solve_lp()
        assert np.array_equal(ref.x, eng.x)
        assert ref.value == eng.value
        assert np.array_equal(ref.y, eng.y)
        assert np.array_equal(ref.z, eng.z)
        assert ref.columns == eng.columns

    def test_columns_match_default_enumeration(self, unweighted_problem):
        compiled = CompiledAuction(unweighted_problem)
        assert compiled.columns == AuctionLP.default_columns(unweighted_problem)


class TestRoundingEquivalence:
    """Vectorized kernels consume the same uniforms as the Python loops."""

    @pytest.mark.parametrize("split", [True, False])
    @pytest.mark.parametrize("resolve", ["survivors", "tentative"])
    def test_unweighted_exact(self, unweighted_problem, split, resolve):
        problem = unweighted_problem
        compiled = compile_auction(problem)
        solution = compiled.solve_lp()
        plan = compiled.rounding_plan(solution, split=split)
        reps = 12
        draws = stack_draws(spawn_rngs(555, reps), plan.width)
        outcome = round_batch(compiled, plan, draws, resolve=resolve)
        for i, child in enumerate(spawn_rngs(555, reps)):
            ref_alloc, _ = round_unweighted(
                problem, solution, child, split=split, resolve=resolve
            )
            assert outcome.allocations[i] == ref_alloc

    def test_unweighted_scaled_exact(self, unweighted_problem):
        problem = unweighted_problem
        compiled = compile_auction(problem)
        solution = compiled.solve_lp()
        scale = 6.5
        plan = compiled.rounding_plan(solution, scale=scale)
        draws = stack_draws(spawn_rngs(556, 8), plan.width)
        outcome = round_batch(compiled, plan, draws)
        for i, child in enumerate(spawn_rngs(556, 8)):
            ref_alloc, _ = round_unweighted(problem, solution, child, scale=scale)
            assert outcome.allocations[i] == ref_alloc

    @pytest.mark.parametrize("resolve", ["survivors", "tentative"])
    def test_weighted_exact(self, weighted_problem_big, resolve):
        problem = weighted_problem_big
        compiled = compile_auction(problem)
        solution = compiled.solve_lp()
        plan = compiled.rounding_plan(solution)
        reps = 10
        draws = stack_draws(spawn_rngs(557, reps), plan.width)
        outcome = round_batch(compiled, plan, draws, resolve=resolve)
        for i, child in enumerate(spawn_rngs(557, reps)):
            ref_alloc, _ = round_weighted(problem, solution, child, resolve=resolve)
            assert outcome.allocations[i] == ref_alloc

    def test_report_statistics_match(self, unweighted_problem):
        problem = unweighted_problem
        compiled = compile_auction(problem)
        solution = compiled.solve_lp()
        plan = compiled.rounding_plan(solution)
        draws = stack_draws(spawn_rngs(558, 6), plan.width)
        outcome = round_batch(compiled, plan, draws)
        for i, child in enumerate(spawn_rngs(558, 6)):
            _, report = round_unweighted(problem, solution, child)
            assert outcome.chosen_class[i] == report.chosen_class
            assert outcome.tentative_sizes[i].tolist() == report.tentative_sizes
            assert outcome.removed_counts[i].tolist() == report.removed_counts

    def test_fast_and_generic_plans_agree(self, unweighted_problem):
        problem = unweighted_problem
        compiled = compile_auction(problem)
        solution = compiled.solve_lp()
        for split in (True, False):
            fast = build_rounding_plan(problem, solution, split=split, cols=compiled.cols)
            generic = build_rounding_plan(problem, solution, split=split)
            assert fast.width == generic.width
            for f, g in zip(fast.classes, generic.classes):
                assert np.array_equal(f.vertices, g.vertices)
                assert np.array_equal(f.offsets, g.offsets)
                assert np.array_equal(f.cum, g.cum)
                assert np.array_equal(f.values, g.values)
                assert f.bundles == g.bundles
                assert np.array_equal(f.chan, g.chan)
                assert np.array_equal(f.cum_pad, g.cum_pad)


class TestSolveEquivalence:
    @pytest.mark.parametrize("attempts", [1, 5])
    def test_unweighted_solve(self, unweighted_problem, attempts):
        for seed in (1, 7, 42):
            ref_alloc, ref_welfare, _ = legacy_solve(unweighted_problem, seed, attempts)
            result = compile_auction(unweighted_problem).solve(
                seed=seed, rounding_attempts=attempts
            )
            assert result.allocation == ref_alloc
            assert result.welfare == ref_welfare

    @pytest.mark.parametrize("attempts", [1, 4])
    def test_weighted_solve(self, weighted_problem_big, attempts):
        for seed in (3, 11):
            ref_alloc, ref_welfare, ref_rounds = legacy_solve(
                weighted_problem_big, seed, attempts
            )
            result = compile_auction(weighted_problem_big).solve(
                seed=seed, rounding_attempts=attempts
            )
            assert result.allocation == ref_alloc
            assert result.welfare == ref_welfare
            assert result.rounds_algorithm3 == ref_rounds

    def test_facade_matches_engine(self, unweighted_problem):
        from repro.core.solver import SpectrumAuctionSolver

        facade = SpectrumAuctionSolver(unweighted_problem).solve(seed=9)
        engine = compile_auction(unweighted_problem).solve(seed=9)
        assert facade.allocation == engine.allocation
        assert facade.welfare == engine.welfare


class TestExperimentInvariants:
    """The paper's guarantees survive the engine path (acceptance checks)."""

    def test_e1_bounds_hold(self):
        from repro.experiments.harness import run_e1

        out = run_e1(n=15, ks=(1, 4), reps=10, seed=1)
        assert out.summary["all_bounds_met"]

    def test_e6_bounds_and_rounds_hold(self):
        from repro.experiments.harness import run_e6

        out = run_e6(n=12, ks=(2,), reps=5, seed=4)
        assert out.summary["all_bounds_met"]
        assert out.summary["rounds_within_log"]

    def test_e13_bounds_hold(self):
        from repro.experiments.harness import run_e13

        out = run_e13(n=15, ks=(1, 4), seed=9)
        assert out.summary["all_bounds_met"]
