"""Per-rule fixtures for reprolint: every rule id has at least one
positive (finding fired) and one negative (clean) snippet, plus pragma
behavior and the guard-declaration forms."""

from __future__ import annotations

import dataclasses
import textwrap
from pathlib import Path

from repro.analysis import DEFAULT_CONFIG, ALL_RULES, AnalysisConfig, analyze_paths
from repro.analysis.rules import rule_index


def lint(
    tmp_path: Path,
    source: str,
    *,
    filename: str = "snippet.py",
    config: AnalysisConfig = DEFAULT_CONFIG,
) -> list:
    """Write one fixture file and run the full rule set over it."""
    path = tmp_path / filename
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source))
    # scan the directory so `filename` can carry package-relative structure
    # (e.g. "service/metrics.py" to exercise path allowlists)
    return analyze_paths([tmp_path], config)


def rules_fired(findings: list) -> set[str]:
    return {f.rule for f in findings}


def test_rule_registry_is_complete():
    ids = {rule.rule_id for rule in ALL_RULES}
    assert ids == {
        "global-rng",
        "set-iteration",
        "json-sort-keys",
        "wall-clock",
        "guarded-by",
        "module-state",
        "mp-context",
        "fork-reset",
        "float-eq",
        "kernel-mutation",
        "silent-except",
        "unbounded-retry",
    }
    assert len(ids) >= 8  # the acceptance floor, with margin
    assert set(rule_index()) == ids
    for rule in ALL_RULES:
        assert rule.family in ("determinism", "concurrency", "parity", "robustness")
        assert rule.invariant


# ----------------------------------------------------------------------
# determinism family
# ----------------------------------------------------------------------
def test_global_rng_positive_module_function(tmp_path):
    findings = lint(
        tmp_path,
        """
        import numpy as np
        x = np.random.rand(3)
        """,
    )
    assert "global-rng" in rules_fired(findings)


def test_global_rng_positive_stdlib_import_and_call(tmp_path):
    findings = lint(
        tmp_path,
        """
        import random
        from random import shuffle
        y = random.random()
        """,
    )
    assert sum(f.rule == "global-rng" for f in findings) == 2


def test_global_rng_negative_seeded_generators(tmp_path):
    findings = lint(
        tmp_path,
        """
        import numpy as np
        from random import Random
        rng = np.random.default_rng(0)
        ss = np.random.SeedSequence(1)
        r = Random(2)
        z = rng.random()
        """,
    )
    assert "global-rng" not in rules_fired(findings)


def test_global_rng_allowlisted_module_is_exempt(tmp_path):
    findings = lint(
        tmp_path,
        """
        import numpy as np
        x = np.random.rand(3)
        """,
        filename="util/rng.py",
    )
    assert "global-rng" not in rules_fired(findings)


def test_set_iteration_positive_forms(tmp_path):
    findings = lint(
        tmp_path,
        """
        def f(xs):
            for x in {1, 2, 3}:
                pass
            ys = list(set(xs))
            return [y for y in frozenset(xs)], ys
        """,
    )
    assert sum(f.rule == "set-iteration" for f in findings) == 3


def test_set_iteration_negative_sorted_and_sequences(tmp_path):
    findings = lint(
        tmp_path,
        """
        def f(xs):
            for x in sorted({1, 2, 3}):
                pass
            for y in [1, 2]:
                pass
            return sorted(set(xs))
        """,
    )
    assert "set-iteration" not in rules_fired(findings)


def test_json_sort_keys_positive(tmp_path):
    findings = lint(
        tmp_path,
        """
        import json
        def dump(d):
            return json.dumps(d, sort_keys=True)
        """,
    )
    assert "json-sort-keys" in rules_fired(findings)


def test_json_sort_keys_negative_and_exempt(tmp_path):
    clean = lint(
        tmp_path,
        """
        import json
        def dump(d):
            return json.dumps(d, sort_keys=False) + json.dumps(d)
        """,
    )
    assert "json-sort-keys" not in rules_fired(clean)
    exempt = lint(
        tmp_path,
        """
        import json
        def dump(d):
            return json.dumps(d, sort_keys=True)
        """,
        filename="io.py",
    )
    assert "json-sort-keys" not in rules_fired(exempt)


def test_wall_clock_positive(tmp_path):
    findings = lint(
        tmp_path,
        """
        import time
        from datetime import datetime
        def stamp():
            return time.time(), datetime.now()
        """,
    )
    assert sum(f.rule == "wall-clock" for f in findings) == 2


def test_wall_clock_negative_perf_counter_and_allowlist(tmp_path):
    clean = lint(
        tmp_path,
        """
        import time
        def took():
            return time.perf_counter()
        """,
    )
    assert "wall-clock" not in rules_fired(clean)
    allowed = lint(
        tmp_path,
        """
        import time
        def stamp():
            return time.time()
        """,
        filename="service/metrics.py",
    )
    assert "wall-clock" not in rules_fired(allowed)


# ----------------------------------------------------------------------
# concurrency family
# ----------------------------------------------------------------------
GUARDED_CLASS = """
import threading

class Counter:
    def __init__(self):
        self._lock = threading.Lock()
        self._count = 0  #: guarded-by: _lock

    def bump(self):
        with self._lock:
            self._count += 1

    def peek(self):
        return self._count

    def _drain_locked(self):
        return self._count
"""


def test_guarded_by_flags_unlocked_access_only(tmp_path):
    findings = [f for f in lint(tmp_path, GUARDED_CLASS) if f.rule == "guarded-by"]
    # peek() reads outside the lock; bump() (locked), __init__ (declaration
    # site, exempt) and _drain_locked (caller-holds-lock convention) are clean
    assert len(findings) == 1
    assert "peek" not in findings[0].context  # context is the offending line
    assert "self._count" in findings[0].context


def test_guarded_by_registry_form(tmp_path):
    findings = lint(
        tmp_path,
        """
        import threading

        class Box:
            _guarded_by = {"items": "_lock"}

            def __init__(self):
                self._lock = threading.Lock()
                self.items = []

            def safe(self):
                with self._lock:
                    return len(self.items)

            def racy(self):
                return len(self.items)
        """,
    )
    assert sum(f.rule == "guarded-by" for f in findings) == 1


def test_guarded_by_field_style_dataclass_fields(tmp_path):
    findings = lint(
        tmp_path,
        """
        import threading
        from dataclasses import dataclass, field

        @dataclass
        class Handle:
            jobs_done: int = 0  #: guarded-by: _lock

        class Pool:
            def __init__(self):
                self._lock = threading.Lock()
                self.h = Handle()

            def ok(self):
                with self._lock:
                    return self.h.jobs_done

            def racy(self):
                return self.h.jobs_done
        """,
    )
    assert sum(f.rule == "guarded-by" for f in findings) == 1


def test_guarded_by_nested_def_does_not_inherit_lock(tmp_path):
    findings = lint(
        tmp_path,
        """
        import threading

        class C:
            def __init__(self):
                self._lock = threading.Lock()
                self._n = 0  #: guarded-by: _lock

            def run(self):
                with self._lock:
                    def callback():
                        return self._n  # may run on another thread
                    return callback
        """,
    )
    assert sum(f.rule == "guarded-by" for f in findings) == 1


def test_module_state_positive(tmp_path):
    findings = lint(
        tmp_path,
        """
        import something
        cache = {}
        pool = something.WorkerPool()
        """,
    )
    assert sum(f.rule == "module-state" for f in findings) == 2


def test_module_state_negative_constants_and_factories(tmp_path):
    findings = lint(
        tmp_path,
        """
        import threading
        CACHE_SIZE = 32
        DEFAULTS = {"a": 1}
        _lock = threading.Lock()
        _local = threading.local()
        _sentinel = object()
        """,
    )
    assert "module-state" not in rules_fired(findings)


def test_mp_context_positive(tmp_path):
    findings = lint(
        tmp_path,
        """
        import multiprocessing as mp
        from multiprocessing import Pool

        def spawn():
            ctx = mp.get_context("spawn")
            return Pool(2), ctx
        """,
    )
    assert sum(f.rule == "mp-context" for f in findings) == 2


def test_mp_context_negative_via_util_mp_and_allowlist(tmp_path):
    clean = lint(
        tmp_path,
        """
        from repro.util.mp import mp_context

        def spawn():
            return mp_context("spawn")
        """,
    )
    assert "mp-context" not in rules_fired(clean)
    allowed = lint(
        tmp_path,
        """
        import multiprocessing as mp
        def spawn():
            return mp.get_context("spawn")
        """,
        filename="util/mp.py",
    )
    assert "mp-context" not in rules_fired(allowed)


def test_fork_reset_positive(tmp_path):
    findings = lint(
        tmp_path,
        """
        import threading
        _local = threading.local()
        """,
    )
    assert "fork-reset" in rules_fired(findings)


def test_fork_reset_negative_with_registration(tmp_path):
    findings = lint(
        tmp_path,
        """
        import threading
        from repro.util.mp import register_fork_reset

        _local = threading.local()

        def reset():
            _local.__dict__.clear()

        register_fork_reset("fixture", reset)
        """,
    )
    assert "fork-reset" not in rules_fired(findings)


# ----------------------------------------------------------------------
# parity family
# ----------------------------------------------------------------------
def test_float_eq_positive(tmp_path):
    findings = lint(
        tmp_path,
        """
        def check(x, y):
            return x == 1.0 or y != 0.5
        """,
    )
    assert sum(f.rule == "float-eq" for f in findings) == 2


def test_float_eq_negative_ints_and_ordering(tmp_path):
    findings = lint(
        tmp_path,
        """
        def check(x, n):
            return x >= 0.5 and n == 3
        """,
    )
    assert "float-eq" not in rules_fired(findings)


KERNEL_CONFIG = dataclasses.replace(DEFAULT_CONFIG, kernel_modules=("*.py",))


def test_kernel_mutation_positive_forms(tmp_path):
    findings = lint(
        tmp_path,
        """
        import numpy as np

        def store(a):
            a[0] = 1.0

        def mutator(a):
            a.sort()

        def aug(a):
            a += 1

        def out_kwarg(a, buf):
            np.add(a, a, out=buf)
        """,
        config=KERNEL_CONFIG,
    )
    assert sum(f.rule == "kernel-mutation" for f in findings) == 4


def test_kernel_mutation_negative_copies_break_taint(tmp_path):
    findings = lint(
        tmp_path,
        """
        import numpy as np

        def safe(a):
            b = a.copy()
            b[0] = 1.0
            b.sort()
            c = np.zeros(3)
            np.add(b, b, out=c)
            return b, c
        """,
        config=KERNEL_CONFIG,
    )
    assert "kernel-mutation" not in rules_fired(findings)


def test_kernel_mutation_view_keeps_taint(tmp_path):
    findings = lint(
        tmp_path,
        """
        def through_view(a):
            row = a[0]
            row[1] = 2.0
        """,
        config=KERNEL_CONFIG,
    )
    assert "kernel-mutation" in rules_fired(findings)


def test_kernel_mutation_outside_kernel_modules_not_checked(tmp_path):
    findings = lint(
        tmp_path,
        """
        def store(a):
            a[0] = 1.0
        """,
    )  # DEFAULT_CONFIG: "snippet.py" is not a kernel module
    assert "kernel-mutation" not in rules_fired(findings)


def test_kernel_mutation_mutates_pragma(tmp_path):
    findings = lint(
        tmp_path,
        """
        def fix(q):  # repro: mutates[q] -- in-place by contract
            q[0] = 1.0

        def fix2(q, r):  # repro: mutates[q]
            q[0] = 1.0
            r[0] = 2.0
        """,
        config=KERNEL_CONFIG,
    )
    flagged = [f for f in findings if f.rule == "kernel-mutation"]
    assert len(flagged) == 1
    assert "'r'" in flagged[0].message


# ----------------------------------------------------------------------
# robustness family
# ----------------------------------------------------------------------
def test_silent_except_positive_pass_and_unrelated_body(tmp_path):
    findings = lint(
        tmp_path,
        """
        def swallow(q):
            try:
                q.get()
            except Exception:
                pass

        def busywork(q):
            try:
                q.get()
            except (ValueError, KeyError):
                q = None
        """,
        filename="service/feed.py",
    )
    flagged = [f for f in findings if f.rule == "silent-except"]
    assert len(flagged) == 2
    assert "Exception" in flagged[0].message
    assert "(ValueError, KeyError)" in flagged[1].message


def test_silent_except_negative_visible_handling(tmp_path):
    findings = lint(
        tmp_path,
        """
        import logging

        def handled(q, future, metrics, log=logging.getLogger(__name__)):
            try:
                q.get()
            except ValueError:
                raise
            except KeyError as exc:
                future.set_exception(exc)
            except TypeError:
                log.warning("bad item")
            except OSError:
                metrics.record_shed()
        """,
        filename="service/feed.py",
    )
    assert "silent-except" not in rules_fired(findings)


def test_silent_except_handling_in_nested_scope_counts(tmp_path):
    findings = lint(
        tmp_path,
        """
        def retry(q):
            try:
                q.get()
            except EOFError:
                if q.closed:
                    raise RuntimeError("gone")
        """,
        filename="service/feed.py",
    )
    assert "silent-except" not in rules_fired(findings)


def test_silent_except_scoped_to_service_modules(tmp_path):
    findings = lint(
        tmp_path,
        """
        def swallow(q):
            try:
                q.get()
            except Exception:
                pass
        """,
    )  # DEFAULT_CONFIG: "snippet.py" is outside service/*
    assert "silent-except" not in rules_fired(findings)


def test_silent_except_pragma_suppresses_with_reason(tmp_path):
    findings = lint(
        tmp_path,
        """
        def poll(q):
            try:
                q.get()
            except TimeoutError:  # repro: allow[silent-except] -- idle poll
                pass
            try:
                q.get()
            except TimeoutError:
                pass
        """,
        filename="service/feed.py",
    )
    assert sum(f.rule == "silent-except" for f in findings) == 1


def test_unbounded_retry_positive_while_true_around_network_call(tmp_path):
    findings = lint(
        tmp_path,
        """
        import asyncio

        async def reconnect(host, port):
            while True:
                try:
                    return await asyncio.open_connection(host, port)
                except OSError:
                    raise

        def hammer(sock):
            while 1:
                sock.sendall(b"x")
        """,
        filename="service/feed.py",
    )
    flagged = [f for f in findings if f.rule == "unbounded-retry"]
    assert len(flagged) == 2
    assert "asyncio.open_connection" in flagged[0].message
    assert "sock.sendall" in flagged[1].message


def test_unbounded_retry_negative_bounded_conditioned_or_non_network(tmp_path):
    findings = lint(
        tmp_path,
        """
        def bounded(client):
            for _attempt in range(3):
                try:
                    return client._exchange("GET", "/v1/health")
                except OSError:
                    raise
            raise RuntimeError("out of attempts")

        def conditioned(self, sock):
            while not self._closed:
                sock.sendall(b"x")

        def non_network(step):
            while True:
                if step():
                    break
        """,
        filename="service/feed.py",
    )
    assert "unbounded-retry" not in rules_fired(findings)


def test_unbounded_retry_scoped_to_service_modules(tmp_path):
    findings = lint(
        tmp_path,
        """
        def hammer(sock):
            while True:
                sock.sendall(b"x")
        """,
    )  # DEFAULT_CONFIG: "snippet.py" is outside service/*
    assert "unbounded-retry" not in rules_fired(findings)


def test_unbounded_retry_pragma_suppresses_with_reason(tmp_path):
    findings = lint(
        tmp_path,
        """
        def pump(sock):
            while True:  # repro: allow[unbounded-retry] -- lifetime of the connection, not a retry
                sock.sendall(b"x")

        def pump2(sock):
            while True:
                sock.sendall(b"x")
        """,
        filename="service/feed.py",
    )
    assert sum(f.rule == "unbounded-retry" for f in findings) == 1


# ----------------------------------------------------------------------
# pragmas
# ----------------------------------------------------------------------
def test_allow_pragma_suppresses_named_rule_on_its_line(tmp_path):
    findings = lint(
        tmp_path,
        """
        import numpy as np
        x = np.random.rand(3)  # repro: allow[global-rng] -- fixture
        y = np.random.rand(3)
        """,
    )
    assert sum(f.rule == "global-rng" for f in findings) == 1


def test_allow_pragma_star_and_lists(tmp_path):
    findings = lint(
        tmp_path,
        """
        import time
        def f(x):
            a = time.time() if x == 1.0 else 0  # repro: allow[wall-clock, float-eq]
            b = time.time() if x == 2.0 else 0  # repro: allow[*]
            return a, b
        """,
    )
    assert rules_fired(findings) == set()


def test_allow_pragma_does_not_suppress_other_rules(tmp_path):
    findings = lint(
        tmp_path,
        """
        import time
        t = time.time()  # repro: allow[float-eq] -- wrong rule id
        """,
    )
    assert "wall-clock" in rules_fired(findings)


def test_pragma_inside_string_is_not_a_pragma(tmp_path):
    findings = lint(
        tmp_path,
        """
        import time
        doc = "# repro: allow[wall-clock]"
        t = time.time()
        """,
    )
    assert "wall-clock" in rules_fired(findings)


def test_findings_carry_location_and_context(tmp_path):
    findings = lint(
        tmp_path,
        """
        import time
        t = time.time()
        """,
    )
    (finding,) = [f for f in findings if f.rule == "wall-clock"]
    assert finding.path == "snippet.py"
    assert finding.line == 3 and finding.col >= 1
    assert finding.context == "t = time.time()"
    assert finding.key() == ("wall-clock", "snippet.py", "t = time.time()")
    payload = finding.to_json()
    assert payload["rule"] == "wall-clock" and payload["line"] == 3
    assert "snippet.py:3:" in finding.render()
