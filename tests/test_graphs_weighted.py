"""Tests for WeightedConflictGraph (Section 3 independence)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graphs.conflict_graph import ConflictGraph, VertexOrdering
from repro.graphs.generators import clique
from repro.graphs.weighted_graph import WeightedConflictGraph


def triangle_weights(w01=0.4, w10=0.4, w12=0.4, w21=0.4, w02=0.4, w20=0.4):
    w = np.zeros((3, 3))
    w[0, 1], w[1, 0] = w01, w10
    w[1, 2], w[2, 1] = w12, w21
    w[0, 2], w[2, 0] = w02, w20
    return w


class TestWeightedConflictGraph:
    def test_negative_weight_rejected(self):
        with pytest.raises(ValueError):
            WeightedConflictGraph(np.array([[0.0, -1.0], [0.0, 0.0]]))

    def test_nonsquare_rejected(self):
        with pytest.raises(ValueError):
            WeightedConflictGraph(np.zeros((2, 3)))

    def test_infinite_rejected(self):
        with pytest.raises(ValueError):
            WeightedConflictGraph(np.array([[0.0, np.inf], [0.0, 0.0]]))

    def test_diagonal_zeroed(self):
        g = WeightedConflictGraph(np.ones((2, 2)))
        assert g.w(0, 0) == 0.0

    def test_wbar_symmetric(self):
        w = np.zeros((2, 2))
        w[0, 1] = 0.3
        w[1, 0] = 0.5
        g = WeightedConflictGraph(w)
        assert g.wbar(0, 1) == pytest.approx(0.8)
        assert g.wbar(1, 0) == pytest.approx(0.8)

    def test_independent_below_threshold(self):
        # Each vertex receives 0.8 < 1 from the other two.
        g = WeightedConflictGraph(triangle_weights())
        assert g.is_independent([0, 1, 2])

    def test_dependent_at_threshold(self):
        g = WeightedConflictGraph(triangle_weights(w01=0.6, w21=0.4))
        # vertex 1 receives 0.6 + 0.4 = 1.0, not < 1.
        assert not g.is_independent([0, 1, 2])
        assert g.is_independent([0, 1])  # 1 receives only 0.6

    def test_incoming_weight(self):
        g = WeightedConflictGraph(triangle_weights())
        assert g.incoming_weight([0, 2], 1) == pytest.approx(0.8)
        assert g.incoming_weight([], 1) == 0.0

    def test_from_conflict_graph_matches_unweighted(self):
        base = ConflictGraph(4, [(0, 1), (2, 3)])
        g = WeightedConflictGraph.from_conflict_graph(base)
        for s in ([0, 1], [0, 2], [1, 3], [0, 2, 1]):
            assert g.is_independent(s) == base.is_independent(s)

    def test_clique_embedding(self):
        g = WeightedConflictGraph.from_conflict_graph(clique(5))
        assert not g.is_independent([0, 1])
        assert g.is_independent([3])

    def test_backward_wbar(self):
        g = WeightedConflictGraph(triangle_weights(w01=0.1, w10=0.2))
        o = VertexOrdering([2, 0, 1])
        vec = g.backward_wbar(1, o)  # earlier: 2 and 0
        assert vec[0] == pytest.approx(0.3)
        assert vec[2] == pytest.approx(0.8)
        assert vec[1] == 0.0

    def test_threshold_graph(self):
        w = np.zeros((3, 3))
        w[0, 1] = 0.6
        w[1, 0] = 0.5  # w̄ = 1.1 ≥ 1 → binary edge
        w[1, 2] = 0.4  # w̄ = 0.4 < 1 → no edge
        g = WeightedConflictGraph(w).threshold_graph()
        assert g.has_edge(0, 1) and not g.has_edge(1, 2)

    def test_subgraph(self):
        g = WeightedConflictGraph(triangle_weights(w01=0.7))
        sub, idx = g.subgraph([0, 1])
        assert sub.w(0, 1) == pytest.approx(0.7)
        assert list(idx) == [0, 1]

    def test_singleton_always_independent(self):
        w = np.ones((3, 3)) * 10
        g = WeightedConflictGraph(w)
        assert g.is_independent([1])
        assert g.is_independent([])
