"""Auction service behavior: scenes, determinism, coalescing, caches, drain."""

from __future__ import annotations

import pytest

from repro.experiments.workloads import metro_disk_scene, metro_protocol_scene
from repro.service import (
    AuctionRequest,
    AuctionService,
    SceneRegistry,
    burst_trace,
    load_trace,
    poisson_trace,
    save_trace,
    scene_fingerprint,
)
from repro.valuations.generators import random_xor_valuations

N = 24
K = 3


@pytest.fixture(scope="module")
def scene():
    return metro_disk_scene(N, seed=501)


def make_service(scene, **overrides):
    options = {"executor": "serial", "coalesce_window": 0.01, "max_batch": 8}
    options.update(overrides)
    service = AuctionService(**options)
    service.register_scene(scene)
    return service


def make_trace(service, num_requests=14, repeat_fraction=0.7, seed=77, **kwargs):
    [scene_id] = service.registry.ids()
    return poisson_trace(
        service.registry,
        [scene_id],
        k=K,
        rate=500.0,
        num_requests=num_requests,
        seed=seed,
        repeat_fraction=repeat_fraction,
        unique_profiles=kwargs.pop("unique_profiles", 3),
        **kwargs,
    )


def allocations(results):
    return [r.allocation for r in results]


class TestSceneRegistry:
    def test_fingerprint_is_content_addressed(self):
        a = metro_disk_scene(N, seed=601)
        b = metro_disk_scene(N, seed=601)  # identical generation, new object
        c = metro_disk_scene(N, seed=602)
        assert a is not b
        assert scene_fingerprint(a) == scene_fingerprint(b)
        assert scene_fingerprint(a) != scene_fingerprint(c)

    def test_fingerprint_covers_weighted_scenes(self):
        from repro.experiments.workloads import physical_auction

        a = physical_auction(10, 2, seed=603).structure
        b = physical_auction(10, 2, seed=603).structure
        c = physical_auction(10, 2, seed=604).structure
        assert scene_fingerprint(a) == scene_fingerprint(b)
        assert scene_fingerprint(a) != scene_fingerprint(c)

    def test_reregistration_keeps_canonical_object(self, scene):
        registry = SceneRegistry()
        first = registry.register(scene)
        clone = metro_disk_scene(N, seed=501)
        second = registry.register(clone)
        assert first == second
        assert registry.get(first) is scene  # first registrant wins
        assert len(registry) == 1

    def test_unknown_scene_rejected(self, scene):
        service = make_service(scene)
        request = AuctionRequest(
            scene_id="feedfacefeedface",
            k=K,
            valuations=random_xor_valuations(N, K, seed=1),
        )
        with pytest.raises(KeyError):
            service.submit(request)


class TestDeterminism:
    def test_same_trace_same_seed_identical_allocations(self, scene):
        first = make_service(scene)
        second = make_service(scene)
        trace = make_trace(first)
        res_a = first.run_trace(trace)
        res_b = second.run_trace(trace)
        assert allocations(res_a) == allocations(res_b)
        assert all(r.feasible for r in res_a)

    def test_queued_serial_matches_sync_path(self, scene):
        sync = make_service(scene)
        queued = make_service(scene)
        trace = make_trace(sync, num_requests=10)
        expected = sync.run_trace(trace)
        futures = [queued.submit(item.request) for item in trace]
        got = [f.result(timeout=60) for f in futures]
        assert queued.close(timeout=60)
        assert allocations(expected) == allocations(got)

    def test_threaded_shards_match_serial(self, scene):
        serial = make_service(scene)
        threaded = make_service(
            scene, executor="thread", num_shards=2, coalesce_window=0.002
        )
        trace = make_trace(serial, num_requests=10)
        expected = serial.run_trace(trace)
        futures = [threaded.submit(item.request) for item in trace]
        got = [f.result(timeout=60) for f in futures]
        assert threaded.close(timeout=60)
        assert allocations(expected) == allocations(got)


class TestCoalescing:
    def test_batched_equals_one_by_one(self, scene):
        batched = make_service(scene, coalesce_window=10.0, max_batch=64)
        single = make_service(scene, coalesce_window=0.0, max_batch=1)
        trace = make_trace(batched, num_requests=12)
        res_batched = batched.run_trace(trace)
        res_single = single.run_trace(trace)
        assert allocations(res_batched) == allocations(res_single)
        # and the two really took different batching paths
        assert batched.metrics_snapshot()["max_batch_size"] > 1
        assert single.metrics_snapshot()["max_batch_size"] == 1

    def test_window_zero_never_batches(self, scene):
        service = make_service(scene, coalesce_window=0.0)
        trace = make_trace(service, num_requests=6)
        service.run_trace(trace)
        assert service.metrics_snapshot()["max_batch_size"] == 1

    def test_batch_groups_respect_scene_boundaries(self, scene):
        service = make_service(scene, coalesce_window=10.0, max_batch=64)
        other_id = service.register_scene(metro_protocol_scene(N, seed=502))
        [disk_id] = [s for s in service.registry.ids() if s != other_id]
        requests = [
            AuctionRequest(
                scene_id=sid,
                k=K,
                valuations=random_xor_valuations(N, K, seed=900 + i),
                seed=i,
            )
            for i, sid in enumerate([disk_id, other_id, disk_id, other_id])
        ]
        results = service.solve_batch(requests)
        assert len(results) == 4
        assert all(r.feasible for r in results)


class TestCacheAccounting:
    def test_repeat_profiles_hit_problem_cache(self, scene):
        service = make_service(scene)
        [scene_id] = service.registry.ids()
        vals = random_xor_valuations(N, K, seed=910)
        requests = [
            AuctionRequest(scene_id, K, vals, seed=i, profile_key="renewal")
            for i in range(5)
        ]
        service.solve_batch(requests)
        stats = service.cache_stats()
        assert stats["problems"]["misses"] == 1
        assert stats["problems"]["hits"] == 4
        # one compiled auction ⇒ exactly one LP solve for all five requests
        warm = stats["lp_warm_solves"]
        assert warm["warm"] + warm["cold"] == 1

    def test_distinct_requests_bypass_problem_cache(self, scene):
        service = make_service(scene)
        [scene_id] = service.registry.ids()
        requests = [
            AuctionRequest(
                scene_id, K, random_xor_valuations(N, K, seed=920 + i), seed=i
            )
            for i in range(3)
        ]
        service.solve_batch(requests)
        stats = service.cache_stats()
        assert stats["problems"]["hits"] == stats["problems"]["misses"] == 0
        warm = stats["lp_warm_solves"]
        assert warm["warm"] + warm["cold"] == 3

    def test_problem_cache_eviction_accounted(self, scene):
        service = make_service(scene, problem_cache_size=2)
        [scene_id] = service.registry.ids()
        for i in range(4):
            service.solve_batch(
                [
                    AuctionRequest(
                        scene_id,
                        K,
                        random_xor_valuations(N, K, seed=930 + i),
                        seed=i,
                        profile_key=f"profile-{i}",
                    )
                ]
            )
        stats = service.cache_stats()["problems"]
        assert stats["evictions"] == 2
        assert stats["size"] == 2

    def test_structure_compiled_once_per_scene(self, scene):
        service = make_service(scene)
        trace = make_trace(service, num_requests=8)
        service.run_trace(trace)
        stats = service.cache_stats()["structures"]
        assert stats["misses"] == 1
        assert stats["hits"] >= 7

    def test_disabled_caches_recompile_everything(self, scene):
        service = make_service(
            scene, structure_cache_size=0, problem_cache_size=0
        )
        [scene_id] = service.registry.ids()
        vals = random_xor_valuations(N, K, seed=940)
        requests = [
            AuctionRequest(scene_id, K, vals, seed=i, profile_key="renewal")
            for i in range(3)
        ]
        service.solve_batch(requests)
        stats = service.cache_stats()
        assert stats["problems"]["hits"] == 0
        warm = stats["lp_warm_solves"]
        assert warm["warm"] + warm["cold"] == 3  # one LP per request


class TestLifecycle:
    def test_graceful_drain_on_close(self, scene):
        service = make_service(scene, executor="thread", num_shards=2)
        trace = make_trace(service, num_requests=8)
        futures = [service.submit(item.request) for item in trace]
        assert service.close(timeout=60)
        assert all(f.done() for f in futures)
        assert all(f.result().feasible for f in futures)
        snap = service.metrics_snapshot()
        assert snap["requests_completed"] == len(futures)
        assert snap["requests_failed"] == 0

    def test_submit_after_close_rejected(self, scene):
        service = make_service(scene)
        trace = make_trace(service, num_requests=2)
        service.submit(trace[0].request)
        assert service.close(timeout=60)
        with pytest.raises(RuntimeError):
            service.submit(trace[1].request)

    def test_close_idempotent_and_context_manager(self, scene):
        with make_service(scene) as service:
            trace = make_trace(service, num_requests=2)
            future = service.submit(trace[0].request)
        assert future.done()
        assert service.close()  # second close is a no-op

    def test_drain_without_starting(self, scene):
        service = make_service(scene)
        assert service.drain(timeout=1)
        assert service.close()


class TestTraffic:
    def test_poisson_trace_deterministic(self, scene):
        service = make_service(scene)
        a = make_trace(service, seed=88)
        b = make_trace(service, seed=88)
        assert [i.arrival for i in a] == [i.arrival for i in b]
        assert [i.request.seed for i in a] == [i.request.seed for i in b]
        assert a.duration > 0 and len(a) == 14

    def test_repeat_fraction_extremes(self, scene):
        service = make_service(scene)
        repeat = make_trace(service, repeat_fraction=1.0, seed=89)
        distinct = make_trace(
            service, repeat_fraction=0.0, unique_profiles=0, seed=89
        )
        assert all(i.request.profile_key is not None for i in repeat)
        assert all(i.request.profile_key is None for i in distinct)

    def test_burst_trace_shape(self, scene):
        service = make_service(scene)
        [scene_id] = service.registry.ids()
        trace = burst_trace(
            service.registry,
            [scene_id],
            k=K,
            burst_size=3,
            bursts=2,
            gap=0.5,
            seed=90,
        )
        assert len(trace) == 6
        assert [i.arrival for i in trace] == [0.0] * 3 + [0.5] * 3

    def test_invalid_parameters_rejected(self, scene):
        service = make_service(scene)
        [scene_id] = service.registry.ids()
        with pytest.raises(ValueError):
            poisson_trace(
                service.registry, [scene_id], k=K, rate=0.0, num_requests=1, seed=1
            )
        with pytest.raises(ValueError):
            burst_trace(
                service.registry,
                [scene_id],
                k=K,
                burst_size=0,
                bursts=1,
                gap=0.1,
                seed=1,
            )

    def test_encode_valuation_preserves_bid_order(self):
        from repro.io import _valuation_from_dict
        from repro.service.wire import encode_valuation
        from repro.valuations.explicit import (
            ExplicitValuation,
            SingleMindedValuation,
            XORValuation,
        )

        bids = {frozenset({2}): 5.0, frozenset({0, 1}): 3.0}  # not sorted
        for cls in (XORValuation, ExplicitValuation):
            encoded = encode_valuation(cls(3, bids))
            assert encoded["bids"] == [[[2], 5.0], [[0, 1], 3.0]]
            decoded = _valuation_from_dict(encoded)
            assert type(decoded) is cls
            assert list(decoded.bids) == list(bids)
        single = SingleMindedValuation(3, frozenset({1, 2}), 4.0)
        assert type(_valuation_from_dict(encode_valuation(single))) is (
            SingleMindedValuation
        )

    def test_save_load_replay_bit_identical(self, scene, tmp_path):
        recorder = make_service(scene)
        trace = make_trace(recorder, num_requests=10)
        expected = recorder.run_trace(trace)
        loaded = load_trace(save_trace(trace, tmp_path / "trace.json"))
        assert len(loaded) == len(trace)
        assert loaded.meta["kind"] == "poisson"
        replayer = make_service(scene)
        got = replayer.run_trace(loaded)
        assert allocations(expected) == allocations(got)


class TestServiceValidation:
    def test_bad_options_rejected(self):
        with pytest.raises(ValueError):
            AuctionService(executor="fpga")
        with pytest.raises(ValueError):
            AuctionService(num_shards=0)
        with pytest.raises(ValueError):
            AuctionService(coalesce_window=-1.0)
        with pytest.raises(ValueError):
            AuctionService(max_batch=0)

    def test_metrics_snapshot_shape(self, scene):
        service = make_service(scene)
        trace = make_trace(service, num_requests=4)
        service.run_trace(trace)
        snap = service.metrics_snapshot()
        assert snap["requests_completed"] == 4
        assert snap["throughput_rps"] > 0
        for key in ("p50", "p95", "p99"):
            assert snap["latency_seconds"][key] >= 0
        assert snap["config"]["executor"] == "serial"
        assert snap["caches"]["structures"]["capacity"] == 32

    def test_write_metrics(self, scene, tmp_path):
        import json

        service = make_service(scene)
        trace = make_trace(service, num_requests=3)
        service.run_trace(trace)
        path = service.write_metrics(tmp_path / "metrics.json")
        data = json.loads(path.read_text())
        assert data["requests_completed"] == 3


class TestTruthfulRequests:
    """Mechanism-as-workload: truthful requests through the service."""

    def _trace(self, service, **kwargs):
        return make_trace(service, mode="truthful", **kwargs)

    def test_truthful_request_resolves_to_outcome(self, scene):
        from repro.mechanism.truthful import MechanismOutcome

        service = make_service(scene)
        trace = self._trace(service, num_requests=3)
        results = service.run_trace(trace)
        assert all(isinstance(r, MechanismOutcome) for r in results)
        structure = service.registry.get(next(iter(service.registry.ids())))
        for item, outcome in zip(trace, results):
            problem_feasible = all(
                structure.graph.is_independent(
                    [v for v, s in outcome.sampled_allocation.items() if j in s]
                )
                for j in range(item.request.k)
            )
            assert problem_feasible
            assert outcome.payments.shape == (structure.n,)

    def test_sampling_deterministic_from_request_seed(self, scene):
        service = make_service(scene)
        trace = self._trace(service, num_requests=6)
        a = service.run_trace(trace)
        b = service.run_trace(trace)
        for x, y in zip(a, b):
            assert x.sampled_allocation == y.sampled_allocation
            assert (x.payments == y.payments).all()

    def test_batching_invariance(self, scene):
        service_batched = make_service(scene, coalesce_window=0.05, max_batch=8)
        service_single = make_service(scene, coalesce_window=0.0, max_batch=1)
        trace = self._trace(service_batched, num_requests=6)
        a = service_batched.run_trace(trace)
        b = service_single.run_trace(trace)
        for x, y in zip(a, b):
            assert x.sampled_allocation == y.sampled_allocation

    def test_repeat_profiles_hit_mechanism_cache(self, scene):
        service = make_service(scene)
        trace = self._trace(
            service, num_requests=8, repeat_fraction=1.0, unique_profiles=2
        )
        service.run_trace(trace)
        stats = service.cache_stats()["mechanisms"]
        assert stats["misses"] == 2
        assert stats["hits"] == 6

    def test_disabled_mechanism_cache_recomputes(self, scene):
        service = make_service(scene, mechanism_cache_size=0)
        trace = self._trace(
            service, num_requests=4, repeat_fraction=1.0, unique_profiles=1
        )
        results = service.run_trace(trace)
        stats = service.cache_stats()["mechanisms"]
        assert stats["hits"] == 0
        assert len(results) == 4

    def test_mixed_mode_batch(self, scene):
        from repro.core.result import SolverResult
        from repro.mechanism.truthful import MechanismOutcome

        service = make_service(scene)
        [scene_id] = service.registry.ids()
        vals = random_xor_valuations(N, K, seed=900, bids_per_bidder=2)
        requests = [
            AuctionRequest(scene_id, K, vals, seed=1, mode="allocate"),
            AuctionRequest(scene_id, K, vals, seed=2, mode="truthful"),
        ]
        results = service.solve_batch(requests)
        assert isinstance(results[0], SolverResult)
        assert isinstance(results[1], MechanismOutcome)

    def test_queued_path_serves_truthful(self, scene):
        from repro.mechanism.truthful import MechanismOutcome

        service = make_service(scene)
        [scene_id] = service.registry.ids()
        vals = random_xor_valuations(N, K, seed=901, bids_per_bidder=2)
        with service:
            future = service.submit(
                AuctionRequest(scene_id, K, vals, seed=5, mode="truthful")
            )
            outcome = future.result(timeout=30)
        assert isinstance(outcome, MechanismOutcome)

    def test_unknown_mode_rejected(self, scene):
        service = make_service(scene)
        [scene_id] = service.registry.ids()
        vals = random_xor_valuations(N, K, seed=902, bids_per_bidder=2)
        bad = AuctionRequest(scene_id, K, vals, mode="clairvoyant")
        with pytest.raises(ValueError):
            service.submit(bad)
        # the synchronous path must reject too, not return silent Nones
        with pytest.raises(ValueError):
            service.solve_batch([bad])
        service.close()

    def test_mode_aware_cache_bypass(self, scene):
        # disabling only the cache relevant to the head's mode triggers the
        # coalescing bypass for that mode, and not for the other
        service = make_service(scene, mechanism_cache_size=0)
        [scene_id] = service.registry.ids()
        vals = random_xor_valuations(N, K, seed=903, bids_per_bidder=2)
        truthful = AuctionRequest(
            scene_id, K, vals, profile_key="p", mode="truthful"
        )
        allocate = AuctionRequest(
            scene_id, K, vals, profile_key="p", mode="allocate"
        )
        assert service._bypass_window(truthful) is True
        assert service._bypass_window(allocate) is False
        assert service._bypass_window() is False  # headless: conservative

    def test_invalid_mechanism_pricing_rejected(self):
        with pytest.raises(ValueError):
            AuctionService(mechanism_pricing="psychic")

    def test_trace_mode_round_trips_through_json(self, scene, tmp_path):
        service = make_service(scene)
        trace = self._trace(service, num_requests=3)
        path = save_trace(trace, tmp_path / "truthful.json")
        loaded = load_trace(path)
        assert [i.request.mode for i in loaded] == ["truthful"] * 3
        assert loaded.meta["mode"] == "truthful"


class TestSmallSamplePercentiles:
    """p99 of a handful of requests must be an observed latency, not an
    interpolated fiction between the two slowest ones."""

    def _metrics_with(self, latencies):
        from repro.service import ServiceMetrics

        metrics = ServiceMetrics()
        for latency in latencies:
            metrics.record_submit()
            metrics.record_done(latency)
        return metrics

    def test_percentiles_are_exact_order_statistics(self):
        latencies = [0.010 * i for i in range(1, 11)]  # 10 samples
        snap = self._metrics_with(latencies).snapshot()
        lat = snap["latency_seconds"]
        # inverted CDF on 10 samples: p50 -> 5th, p95 -> 10th, p99 -> 10th
        assert lat["p50"] == pytest.approx(0.050)
        assert lat["p95"] == pytest.approx(0.100)
        assert lat["p99"] == pytest.approx(0.100)
        assert lat["p99"] == lat["max"]
        assert lat["samples"] == 10
        for key in ("p50", "p95", "p99"):
            assert lat[key] in latencies  # every percentile was observed

    def test_single_sample_reports_itself_everywhere(self):
        lat = self._metrics_with([0.123]).snapshot()["latency_seconds"]
        assert lat["p50"] == lat["p95"] == lat["p99"] == lat["max"] == 0.123
        assert lat["samples"] == 1

    def test_counts_accessor_is_consistent_with_snapshot(self):
        metrics = self._metrics_with([0.01, 0.02])
        metrics.record_submit()
        metrics.record_done(0.03, failed=True)
        counts = metrics.counts()
        assert counts == {
            "submitted": 3,
            "completed": 2,
            "failed": 1,
            "shed": 0,
            "timeouts": 0,
            "degraded": 0,
        }
        snap = metrics.snapshot()
        assert snap["requests_completed"] == counts["completed"]
        assert snap["requests_failed"] == counts["failed"]


class TestAdaptiveCoalescing:
    def test_disabled_caches_bypass_window(self, scene):
        service = make_service(
            scene, problem_cache_size=0, mechanism_cache_size=0
        )
        assert service._bypass_window() is True

    def test_distinct_stream_bypasses_window(self, scene):
        service = make_service(scene, coalesce_window=0.05, max_batch=8)
        trace = make_trace(
            service, num_requests=8, repeat_fraction=0.0, unique_profiles=0
        )
        service.run_trace(trace)
        # every request dispatched alone: the head request has no profile
        assert service.metrics_snapshot()["mean_batch_size"] == 1.0

    def test_repeat_stream_keeps_coalescing(self, scene):
        service = make_service(scene, coalesce_window=10.0, max_batch=4)
        trace = make_trace(
            service, num_requests=8, repeat_fraction=1.0, unique_profiles=2
        )
        service.run_trace(trace)
        assert service.metrics_snapshot()["mean_batch_size"] > 1.0

    def test_opt_out_restores_fixed_window(self, scene):
        service = make_service(
            scene,
            coalesce_window=10.0,
            max_batch=4,
            adaptive_coalescing=False,
            problem_cache_size=0,
            mechanism_cache_size=0,
        )
        assert service._bypass_window() is False
        trace = make_trace(service, num_requests=4, repeat_fraction=0.0)
        service.run_trace(trace)
        assert service.metrics_snapshot()["mean_batch_size"] == 4.0

    def test_results_unchanged_by_bypass(self, scene):
        adaptive = make_service(scene, coalesce_window=0.05, max_batch=8)
        fixed = make_service(
            scene, coalesce_window=0.05, max_batch=8, adaptive_coalescing=False
        )
        trace = make_trace(
            adaptive, num_requests=8, repeat_fraction=0.0, unique_profiles=0
        )
        a = adaptive.run_trace(trace)
        b = fixed.run_trace(trace)
        assert allocations(a) == allocations(b)
