"""Smoke tests: every example script runs cleanly end to end.

Each example is executed as a subprocess exactly the way a user would run
it; any assertion failure or crash inside the script fails the test.
"""

from __future__ import annotations

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).parent.parent / "examples").glob("*.py")
)


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=240,
    )
    assert result.returncode == 0, (
        f"{script.name} failed:\n{result.stdout[-2000:]}\n{result.stderr[-2000:]}"
    )
    assert result.stdout.strip(), f"{script.name} produced no output"


def test_examples_exist():
    assert len(EXAMPLES) >= 5
