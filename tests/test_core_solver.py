"""Tests for the end-to-end solver facade."""

from __future__ import annotations

import pytest

from repro.core.auction import AuctionProblem
from repro.core.solver import SpectrumAuctionSolver
from repro.valuations.generators import (
    random_additive_valuations,
    random_xor_valuations,
)


class TestSolverUnweighted:
    def test_full_pipeline(self, protocol_problem):
        result = SpectrumAuctionSolver(protocol_problem).solve(seed=71)
        assert result.feasible
        assert result.welfare >= 0
        assert result.lp_value >= result.welfare - 1e-6
        assert result.guarantee == pytest.approx(
            protocol_problem.approximation_bound()
        )

    def test_more_attempts_never_worse(self, protocol_problem):
        one = SpectrumAuctionSolver(protocol_problem).solve(
            seed=72, rounding_attempts=1
        )
        many = SpectrumAuctionSolver(protocol_problem).solve(
            seed=72, rounding_attempts=8
        )
        assert many.welfare >= one.welfare - 1e-9

    def test_derandomized_deterministic(self, protocol_problem):
        a = SpectrumAuctionSolver(protocol_problem).solve(derandomize=True)
        b = SpectrumAuctionSolver(protocol_problem).solve(derandomize=True)
        assert a.allocation == b.allocation
        assert a.meets_guarantee()

    def test_lp_method_selection(self, protocol_structure):
        vals = random_additive_valuations(protocol_structure.n, 4, seed=73)
        problem = AuctionProblem(protocol_structure, 4, vals)
        solver = SpectrumAuctionSolver(problem)
        explicit = solver.solve_lp("explicit")
        colgen = solver.solve_lp("column_generation")
        auto = solver.solve_lp("auto")
        assert explicit.value == pytest.approx(colgen.value, rel=1e-6)
        assert auto.value == pytest.approx(explicit.value, rel=1e-6)

    def test_unknown_method_rejected(self, protocol_problem):
        with pytest.raises(ValueError):
            SpectrumAuctionSolver(protocol_problem).solve_lp("simplex")

    def test_pairwise_derandomize_mode(self, protocol_problem):
        result = SpectrumAuctionSolver(protocol_problem).solve(
            derandomize="pairwise"
        )
        assert result.feasible
        again = SpectrumAuctionSolver(protocol_problem).solve(
            derandomize="pairwise"
        )
        assert result.allocation == again.allocation  # deterministic

    def test_unknown_derandomize_mode(self, protocol_problem):
        with pytest.raises(ValueError):
            SpectrumAuctionSolver(protocol_problem).solve(derandomize="magic")


class TestSolverWeighted:
    def test_weighted_pipeline(self, weighted_problem):
        result = SpectrumAuctionSolver(weighted_problem).solve(seed=74)
        assert result.feasible
        import math

        assert result.rounds_algorithm3 <= math.ceil(
            math.log2(max(2, weighted_problem.n))
        ) + 1

    def test_power_control_end_to_end(self, power_control_struct, links12):
        vals = random_xor_valuations(12, 2, seed=75)
        problem = AuctionProblem(power_control_struct, 2, vals)
        result = SpectrumAuctionSolver(problem).solve(seed=76, rounding_attempts=4)
        assert result.feasible
        if any(result.allocation.values()):
            assert result.sinr_feasible is True
            for j, powers in result.channel_powers.items():
                members = [v for v, s in result.allocation.items() if j in s]
                assert all(powers[m] > 0 for m in members)

    def test_guarantee_definition(self, weighted_problem):
        import math

        expected = (
            16.0
            * math.sqrt(weighted_problem.k)
            * weighted_problem.rho
            * math.ceil(math.log2(max(2, weighted_problem.n)))
        )
        assert weighted_problem.approximation_bound() == pytest.approx(expected)


class TestSolverResultAccounting:
    def test_lp_ratio(self, protocol_problem):
        result = SpectrumAuctionSolver(protocol_problem).solve(
            seed=77, rounding_attempts=4
        )
        if result.welfare > 0:
            assert result.lp_ratio == pytest.approx(
                result.lp_value / result.welfare
            )

    def test_welfare_matches_allocation(self, protocol_problem):
        result = SpectrumAuctionSolver(protocol_problem).solve(seed=78)
        assert result.welfare == pytest.approx(
            protocol_problem.welfare(result.allocation)
        )
