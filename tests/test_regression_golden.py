"""Golden-instance regression tests.

Pins the exact numeric outputs of the pipeline on fixed instances, guarding
against silent numeric drift in LP assembly, solver configuration, or
rounding logic.  If one of these fails after an intentional change, update
the golden value *and say why* in the commit.
"""

from __future__ import annotations

import pytest

from repro.core.auction_lp import AuctionLP
from repro.core.derandomize import derandomize_rounding
from repro.core.exact import solve_exact
from repro.experiments.workloads import protocol_auction, physical_auction


@pytest.fixture(scope="module")
def golden_unweighted():
    return protocol_auction(12, 3, seed=777)


@pytest.fixture(scope="module")
def golden_weighted():
    return physical_auction(10, 2, seed=778)


class TestGoldenUnweighted:
    def test_instance_fingerprint(self, golden_unweighted):
        p = golden_unweighted
        assert p.n == 12 and p.k == 3 and p.rho == 12
        assert p.graph.m == 1

    def test_lp_value(self, golden_unweighted):
        lp = AuctionLP(golden_unweighted).solve()
        assert lp.value == pytest.approx(1321.0, abs=1e-6)

    def test_exact_value(self, golden_unweighted):
        result = solve_exact(golden_unweighted)
        assert result.value == pytest.approx(1262.0, abs=1e-6)

    def test_derandomized_value(self, golden_unweighted):
        lp = AuctionLP(golden_unweighted).solve()
        out = derandomize_rounding(golden_unweighted, lp)
        assert golden_unweighted.welfare(out.allocation) == pytest.approx(
            1262.0, abs=1e-6
        )


class TestGoldenWeighted:
    def test_instance_fingerprint(self, golden_weighted):
        p = golden_weighted
        assert p.n == 10 and p.k == 2 and p.is_weighted
        assert p.rho == pytest.approx(1.9052, abs=1e-3)

    def test_lp_value(self, golden_weighted):
        lp = AuctionLP(golden_weighted).solve()
        assert lp.value == pytest.approx(872.0, abs=0.5)
