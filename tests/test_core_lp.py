"""Tests for the LP layer: primal/dual correctness against hand-solved LPs."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp

from repro.core.lp import solve_packing_lp


class TestSolvePackingLP:
    def test_simple_knapsack_like(self):
        # max 3x + 2y s.t. x + y ≤ 1 → x=1, value 3, dual 3.
        sol = solve_packing_lp(
            np.array([3.0, 2.0]), np.array([[1.0, 1.0]]), np.array([1.0])
        )
        assert sol.value == pytest.approx(3.0)
        assert sol.x[0] == pytest.approx(1.0)
        assert sol.duals[0] == pytest.approx(3.0)

    def test_strong_duality(self):
        rng = np.random.default_rng(1)
        for _ in range(5):
            c = rng.random(6)
            a = rng.random((4, 6))
            b = rng.random(4) + 0.5
            sol = solve_packing_lp(c, a, b)
            assert sol.value == pytest.approx(float(b @ sol.duals), abs=1e-7)

    def test_dual_feasibility(self):
        rng = np.random.default_rng(2)
        c = rng.random(5)
        a = rng.random((3, 5)) + 0.1
        b = rng.random(3) + 0.5
        sol = solve_packing_lp(c, a, b)
        # Aᵀy ≥ c for the maximization dual.
        assert (np.asarray(a).T @ sol.duals >= c - 1e-7).all()

    def test_upper_bounds_respected(self):
        sol = solve_packing_lp(
            np.array([5.0]),
            np.array([[1.0]]),
            np.array([10.0]),
            upper_bounds=np.array([2.0]),
        )
        assert sol.x[0] == pytest.approx(2.0)
        assert sol.value == pytest.approx(10.0)

    def test_sparse_input(self):
        a = sp.csr_matrix(np.array([[1.0, 0.0], [0.0, 1.0]]))
        sol = solve_packing_lp(np.array([1.0, 1.0]), a, np.array([1.0, 2.0]))
        assert sol.value == pytest.approx(3.0)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            solve_packing_lp(np.ones(2), np.ones((2, 3)), np.ones(2))

    def test_infeasible_like_unbounded_raises(self):
        # No constraints bounding x with positive objective → unbounded.
        with pytest.raises(RuntimeError):
            solve_packing_lp(np.array([1.0]), np.zeros((1, 1)), np.array([1.0]))

    def test_zero_objective(self):
        sol = solve_packing_lp(np.zeros(3), np.eye(3), np.ones(3))
        assert sol.value == pytest.approx(0.0)

    def test_complementary_slackness(self):
        rng = np.random.default_rng(3)
        c = rng.random(4) + 0.5
        a = rng.random((4, 4)) + 0.2
        b = rng.random(4) + 1.0
        sol = solve_packing_lp(c, a, b)
        slack = b - np.asarray(a) @ sol.x
        for i in range(4):
            assert sol.duals[i] * slack[i] == pytest.approx(0.0, abs=1e-6)
