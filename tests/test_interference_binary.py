"""Tests for the binary interference models (protocol, 802.11, disk,
distance-2 coloring, civilized, distance-2 matching) and their ρ bounds."""

from __future__ import annotations

import numpy as np
import pytest

from repro.geometry.disks import random_disk_instance
from repro.geometry.links import links_from_arrays, random_links
from repro.graphs.generators import path
from repro.graphs.inductive import rho_of_ordering
from repro.interference.civilized import (
    CivilizedInstance,
    civilized_distance2_model,
    civilized_graph,
    civilized_rho_bound,
    sample_separated_points,
)
from repro.interference.disk import (
    DISK_RHO_BOUND,
    disk_transmitter_model,
    distance2_coloring_graph,
    distance2_coloring_model,
    graph_square,
)
from repro.interference.distance2 import (
    distance2_matching_graph,
    distance2_matching_model,
)
from repro.interference.protocol import (
    IEEE80211_RHO_BOUND,
    ieee80211_model,
    protocol_conflict_graph,
    protocol_model,
    protocol_rho_bound,
)


class TestProtocolModel:
    def test_rho_bound_formula(self):
        # Δ=1: ⌈π/arcsin(1/4)⌉ − 1 = ⌈12.44⌉ − 1 = 12.
        assert protocol_rho_bound(1.0) == 12
        # Larger guard zones → smaller ρ.
        assert protocol_rho_bound(4.0) > 0
        assert protocol_rho_bound(4.0) <= protocol_rho_bound(0.5)

    def test_delta_validation(self):
        with pytest.raises(ValueError):
            protocol_rho_bound(0.0)
        with pytest.raises(ValueError):
            protocol_conflict_graph(random_links(3, seed=1), -1.0)

    def test_conflict_symmetric_guard_zone(self):
        # Two parallel links far apart do not conflict; close ones do.
        far = links_from_arrays(
            np.array([[0.0, 0.0], [10.0, 0.0]]),
            np.array([[0.1, 0.0], [10.1, 0.0]]),
        )
        assert protocol_conflict_graph(far, 1.0).m == 0
        near = links_from_arrays(
            np.array([[0.0, 0.0], [0.15, 0.0]]),
            np.array([[0.1, 0.0], [0.25, 0.0]]),
        )
        assert protocol_conflict_graph(near, 1.0).m == 1

    def test_measured_rho_within_bound(self, links25):
        for delta in (0.5, 1.0, 2.0):
            cs = protocol_model(links25, delta)
            assert rho_of_ordering(cs.graph, cs.ordering) <= cs.rho

    def test_monotone_in_delta(self, links25):
        # A bigger guard zone can only add conflicts.
        g1 = protocol_conflict_graph(links25, 0.5)
        g2 = protocol_conflict_graph(links25, 2.0)
        assert set(g1.edges()) <= set(g2.edges())


class TestIEEE80211:
    def test_supergraph_of_protocol(self, links25):
        # Bidirectional conflicts include everything the protocol model has
        # (endpoint distances include the sender–receiver pairs).
        proto = protocol_conflict_graph(links25, 1.0)
        bidi = ieee80211_model(links25, 1.0).graph
        assert set(proto.edges()) <= set(bidi.edges())

    def test_rho_constant(self, links25):
        cs = ieee80211_model(links25, 1.0)
        assert cs.rho == IEEE80211_RHO_BOUND
        assert rho_of_ordering(cs.graph, cs.ordering) <= cs.rho


class TestDiskModels:
    def test_disk_rho_bound_holds(self):
        for seed in range(6):
            inst = random_disk_instance(40, seed=seed, radius_range=(0.03, 0.2))
            cs = disk_transmitter_model(inst)
            measured = rho_of_ordering(cs.graph, cs.ordering)
            assert measured <= DISK_RHO_BOUND
            assert cs.rho == DISK_RHO_BOUND

    def test_graph_square(self):
        g = path(4)  # 0-1-2-3
        sq = graph_square(g)
        assert sq.has_edge(0, 2) and sq.has_edge(1, 3)
        assert not sq.has_edge(0, 3)

    def test_distance2_coloring_is_square(self):
        inst = random_disk_instance(20, seed=3)
        cs = distance2_coloring_model(inst)
        assert set(distance2_coloring_graph(inst.graph).edges()) == set(
            cs.graph.edges()
        )

    def test_distance2_rho_within_bound(self):
        inst = random_disk_instance(30, seed=4)
        cs = distance2_coloring_model(inst)
        assert rho_of_ordering(cs.graph, cs.ordering) <= cs.rho


class TestCivilized:
    def test_separation_enforced(self):
        pts = sample_separated_points(20, 0.1, seed=5)
        from repro.geometry.points import pairwise_distances

        d = pairwise_distances(pts)
        off = d[~np.eye(20, dtype=bool)]
        assert off.min() >= 0.1 - 1e-12

    def test_impossible_separation_raises(self):
        with pytest.raises(RuntimeError):
            sample_separated_points(100, 0.5, extent=1.0, seed=6, max_attempts=2)

    def test_civilized_graph_validates_separation(self):
        pts = np.array([[0.0, 0.0], [0.01, 0.0]])
        with pytest.raises(ValueError):
            civilized_graph(pts, r=0.3, s=0.1)

    def test_rho_bound_formula(self):
        assert civilized_rho_bound(0.2, 0.1) == pytest.approx((4 * 2 + 2) ** 2)
        with pytest.raises(ValueError):
            civilized_rho_bound(0.0, 0.1)

    def test_model_within_bound(self):
        inst = CivilizedInstance.sample(25, r=0.15, s=0.08, seed=7)
        cs = civilized_distance2_model(inst)
        assert rho_of_ordering(cs.graph, cs.ordering) <= cs.rho

    def test_any_ordering_within_bound(self):
        # Proposition 12 holds for every ordering.
        from repro.graphs.conflict_graph import VertexOrdering

        inst = CivilizedInstance.sample(20, r=0.15, s=0.08, seed=8)
        cs = civilized_distance2_model(inst)
        rng = np.random.default_rng(9)
        for _ in range(3):
            perm = rng.permutation(20)
            assert rho_of_ordering(cs.graph, VertexOrdering(perm)) <= cs.rho


class TestDistance2Matching:
    def test_conflicts_are_strong(self):
        # On a path host 0-1-2-3: edges e0={0,1}, e1={1,2}, e2={2,3}.
        # e0/e1 share vertex 1; e0/e2 are joined by host edge {1,2}.
        host = path(4)
        graph, edges = distance2_matching_graph(host)
        assert len(edges) == 3
        assert graph.has_edge(0, 1)
        assert graph.has_edge(0, 2)

    def test_on_longer_path_far_edges_compatible(self):
        host = path(6)  # edges 0..4
        graph, edges = distance2_matching_graph(host)
        i03 = edges.index((0, 1)), edges.index((3, 4))
        assert not graph.has_edge(*i03)

    def test_model_bound(self):
        inst = random_disk_instance(15, seed=10, radius_range=(0.05, 0.12))
        cs = distance2_matching_model(inst)
        assert cs.graph.n == inst.graph.m
        assert rho_of_ordering(cs.graph, cs.ordering) <= cs.rho
