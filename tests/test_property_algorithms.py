"""Property-based tests on the rounding/resolution algorithms themselves.

These generate *arbitrary* tentative allocations and weighted graphs (not
just LP-derived ones) and check that the conflict-resolution layers always
restore their invariants.
"""

from __future__ import annotations

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.auction import AuctionProblem
from repro.core.conflict_resolution import check_condition5, make_fully_feasible
from repro.core.rounding import resolve_unweighted, resolve_weighted_partial
from repro.graphs.conflict_graph import ConflictGraph, VertexOrdering
from repro.graphs.weighted_graph import WeightedConflictGraph
from repro.interference.base import ConflictStructure, WeightedConflictStructure
from repro.valuations.explicit import XORValuation

SETTINGS = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

K = 3


@st.composite
def unweighted_problems(draw, max_n=8):
    n = draw(st.integers(min_value=2, max_value=max_n))
    pairs = [(u, v) for u in range(n) for v in range(u + 1, n)]
    mask = draw(st.lists(st.booleans(), min_size=len(pairs), max_size=len(pairs)))
    graph = ConflictGraph(n, [p for p, m in zip(pairs, mask) if m])
    perm = draw(st.permutations(list(range(n))))
    structure = ConflictStructure(graph, VertexOrdering(list(perm)), float(n))
    vals = [XORValuation(K, {frozenset({0}): float(i + 1)}) for i in range(n)]
    return AuctionProblem(structure, K, vals)


@st.composite
def weighted_problems(draw, max_n=7):
    n = draw(st.integers(min_value=2, max_value=max_n))
    values = draw(
        st.lists(
            st.floats(min_value=0.0, max_value=1.2, allow_nan=False),
            min_size=n * n,
            max_size=n * n,
        )
    )
    w = np.array(values).reshape(n, n)
    np.fill_diagonal(w, 0.0)
    structure = WeightedConflictStructure(
        WeightedConflictGraph(w), VertexOrdering.identity(n), float(2 * n)
    )
    vals = [XORValuation(K, {frozenset({0}): float(i + 1)}) for i in range(n)]
    return AuctionProblem(structure, K, vals)


@st.composite
def tentative_allocations(draw, n):
    alloc = {}
    for v in range(n):
        if draw(st.booleans()):
            channels = draw(
                st.lists(
                    st.integers(min_value=0, max_value=K - 1),
                    min_size=1,
                    max_size=K,
                    unique=True,
                )
            )
            alloc[v] = frozenset(channels)
    return alloc


class TestResolutionInvariants:
    @SETTINGS
    @given(unweighted_problems(), st.data())
    def test_resolve_unweighted_always_feasible(self, problem, data):
        tentative = data.draw(tentative_allocations(problem.n))
        for mode in ("survivors", "tentative"):
            final, removed = resolve_unweighted(problem, tentative, mode)
            assert problem.is_feasible(final)
            assert removed == len([v for v in tentative if v not in final])

    @SETTINGS
    @given(unweighted_problems(), st.data())
    def test_survivors_keeps_superset(self, problem, data):
        tentative = data.draw(tentative_allocations(problem.n))
        surv, _ = resolve_unweighted(problem, tentative, "survivors")
        tent, _ = resolve_unweighted(problem, tentative, "tentative")
        assert set(tent) <= set(surv)

    @SETTINGS
    @given(weighted_problems(), st.data())
    def test_resolve_weighted_establishes_condition5(self, problem, data):
        tentative = data.draw(tentative_allocations(problem.n))
        final, _ = resolve_weighted_partial(problem, tentative)
        assert check_condition5(problem, final)

    @SETTINGS
    @given(weighted_problems(), st.data())
    def test_algorithm3_on_resolved_input(self, problem, data):
        tentative = data.draw(tentative_allocations(problem.n))
        partly, _ = resolve_weighted_partial(problem, tentative)
        result = make_fully_feasible(problem, partly)
        assert problem.is_feasible(result.allocation)
        # Candidates partition the partly-feasible bundles.
        assigned = sorted(v for cand in result.candidates for v in cand)
        assert assigned == sorted(v for v, s in partly.items() if s)

    @SETTINGS
    @given(weighted_problems(), st.data())
    def test_algorithm3_value_conservation(self, problem, data):
        tentative = data.draw(tentative_allocations(problem.n))
        partly, _ = resolve_weighted_partial(problem, tentative)
        result = make_fully_feasible(problem, partly)
        assert sum(result.candidate_values) <= result.input_value + 1e-9
        assert result.best_value <= result.input_value + 1e-9

    @SETTINGS
    @given(unweighted_problems(), st.data())
    def test_resolution_never_adds_vertices(self, problem, data):
        tentative = data.draw(tentative_allocations(problem.n))
        final, _ = resolve_unweighted(problem, tentative)
        for v, bundle in final.items():
            assert tentative[v] == bundle  # bundles never change, only drop


class TestOrderingHeuristics:
    @SETTINGS
    @given(unweighted_problems())
    def test_degeneracy_ordering_bounds_rho(self, problem):
        from repro.graphs.inductive import (
            inductive_independence_number,
            rho_of_ordering,
        )
        from repro.graphs.orderings import degeneracy_ordering

        graph = problem.graph
        rho_exact, _ = inductive_independence_number(graph)
        rho_degen = rho_of_ordering(graph, degeneracy_ordering(graph))
        assert rho_degen >= rho_exact
        # Backward degree under degeneracy ordering ≤ degeneracy d(G), and
        # rho(π) ≤ max backward degree.
        from repro.graphs.orderings import ordering_quality

        quality = ordering_quality(graph, degeneracy_ordering(graph))
        assert quality["rho"] <= quality["max_backward_degree"] or graph.m == 0
