"""Tests for the inductive independence number ρ (Definitions 1 and 2)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graphs.conflict_graph import ConflictGraph, VertexOrdering
from repro.graphs.generators import clique, cycle, gnp_random_graph, path, star
from repro.graphs.inductive import (
    inductive_independence_number,
    rho_of_ordering,
    weighted_rho_of_ordering,
)
from repro.graphs.weighted_graph import WeightedConflictGraph


class TestExactRho:
    def test_clique_rho_one(self):
        # Backward neighborhoods in a clique are cliques: α ≤ 1.
        rho, _ = inductive_independence_number(clique(6))
        assert rho == 1

    def test_empty_graph_rho_zero(self):
        rho, _ = inductive_independence_number(ConflictGraph(5))
        assert rho == 0

    def test_star_rho_one(self):
        # Order the center first; every leaf sees only the center backward.
        rho, _ = inductive_independence_number(star(8))
        assert rho == 1

    def test_path_rho_one(self):
        rho, _ = inductive_independence_number(path(6))
        assert rho == 1

    def test_cycle_rho_two(self):
        # The π-last vertex of C5 sees both its (non-adjacent) neighbors.
        rho, _ = inductive_independence_number(cycle(5))
        assert rho == 2

    def test_returned_ordering_achieves_rho(self):
        for seed in range(4):
            g = gnp_random_graph(14, 0.3, seed=seed)
            rho, ordering = inductive_independence_number(g)
            assert rho_of_ordering(g, ordering) == rho

    def test_rho_optimal_vs_all_orderings(self):
        from itertools import permutations

        g = gnp_random_graph(6, 0.5, seed=11)
        rho, _ = inductive_independence_number(g)
        best = min(
            rho_of_ordering(g, VertexOrdering(list(p)))
            for p in permutations(range(6))
        )
        assert rho == best

    def test_tree_regression(self):
        # Regression: a lazy-heap bug once returned ρ = 2 for this tree.
        # Forests always admit an ordering with ρ ≤ 1 (peel leaves).
        g = ConflictGraph(5, [(0, 1), (0, 2), (1, 4), (2, 3)])
        rho, ordering = inductive_independence_number(g)
        assert rho == 1
        assert rho_of_ordering(g, ordering) == 1

    def test_complete_bipartite(self):
        # K_{3,3}: ρ = 3 (one side can appear in a backward neighborhood).
        import itertools

        edges = list(itertools.product(range(3), range(3, 6)))
        g = ConflictGraph(6, edges)
        rho, _ = inductive_independence_number(g)
        assert rho == 3


class TestRhoOfOrdering:
    def test_bad_ordering_worse(self):
        # On a star, putting the center last makes its backward
        # neighborhood the whole independent leaf set.
        g = star(6)
        bad = VertexOrdering([1, 2, 3, 4, 5, 0])
        assert rho_of_ordering(g, bad) == 5
        good = VertexOrdering([0, 1, 2, 3, 4, 5])
        assert rho_of_ordering(g, good) == 1

    def test_upper_bounds_true_rho(self):
        for seed in range(4):
            g = gnp_random_graph(12, 0.35, seed=seed)
            rho, _ = inductive_independence_number(g)
            any_order = VertexOrdering.identity(12)
            assert rho_of_ordering(g, any_order) >= rho


class TestWeightedRho:
    def test_unweighted_embedding_matches(self):
        # Embedding an unweighted graph: ρ(π) of Definition 2 equals the
        # unweighted ρ(π) because w̄ = 2 per edge... the weighted value is
        # 2·(max independent backward set).
        g = cycle(5)
        rho, ordering = inductive_independence_number(g)
        wg = WeightedConflictGraph.from_conflict_graph(g)
        bounds = weighted_rho_of_ordering(wg, ordering, exact=True)
        assert bounds.upper == pytest.approx(2.0 * rho)
        assert bounds.lower == pytest.approx(2.0 * rho)

    def test_bounds_order(self):
        rng = np.random.default_rng(3)
        w = rng.random((10, 10)) * 0.4
        np.fill_diagonal(w, 0)
        wg = WeightedConflictGraph(w)
        ordering = VertexOrdering.identity(10)
        bounds = weighted_rho_of_ordering(wg, ordering, heavy_threshold=0.1)
        assert bounds.lower <= bounds.upper + 1e-9

    def test_exact_tightens_bounds(self):
        rng = np.random.default_rng(4)
        w = rng.random((9, 9)) * 0.3
        np.fill_diagonal(w, 0)
        wg = WeightedConflictGraph(w)
        ordering = VertexOrdering.identity(9)
        loose = weighted_rho_of_ordering(wg, ordering, heavy_threshold=0.2)
        tight = weighted_rho_of_ordering(wg, ordering, exact=True)
        assert tight.upper <= loose.upper + 1e-9
        assert tight.lower == pytest.approx(tight.upper)  # exact mode is exact

    def test_zero_graph(self):
        wg = WeightedConflictGraph(np.zeros((4, 4)))
        bounds = weighted_rho_of_ordering(wg, VertexOrdering.identity(4))
        assert bounds.upper == 0.0 and bounds.lower == 0.0

    def test_lower_is_feasible_pack(self):
        # The lower bound comes from an actual independent set, so a
        # hand-checkable case: two earlier vertices with w̄ = 0.4 each to v
        # and nothing between them → ρ(π) = 0.8.
        w = np.zeros((3, 3))
        w[0, 2] = 0.4
        w[1, 2] = 0.4
        wg = WeightedConflictGraph(w)
        bounds = weighted_rho_of_ordering(wg, VertexOrdering.identity(3), exact=True)
        assert bounds.upper == pytest.approx(0.8)
        assert bounds.argmax_vertex == 2
