"""Sparse/dense parity: spatial-index builders and the sparse compile path.

Two layers of pinning:

* **graph parity** — for every interference model the KD-tree builder must
  emit *exactly* the dense builder's edge set (the spatial path generates a
  candidate superset and re-applies the dense predicate with identical
  floating-point expressions, so this is equality, not approximation);
* **kernel parity** — auctions compiled from CSR-backed structures must
  round to bit-identical allocations for the same seed as their
  dense-compiled twins, across all four model families.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.auction import AuctionProblem
from repro.engine.compiled import CompiledAuction, _build_structure
from repro.geometry.disks import DiskInstance, disk_graph
from repro.geometry.links import links_from_arrays
from repro.geometry.spatial import SPATIAL_INDEX_MIN_N, resolve_method
from repro.graphs.weighted_graph import WeightedConflictGraph
from repro.interference.base import WeightedConflictStructure
from repro.interference.disk import (
    disk_transmitter_model,
    distance2_coloring_model,
    graph_square,
)
from repro.interference.distance2 import distance2_matching_graph
from repro.interference.physical import (
    linear_power,
    physical_model_structure,
    sparse_physical_structure,
)
from repro.interference.protocol import (
    ieee80211_conflict_graph,
    protocol_conflict_graph,
    protocol_model,
)
from repro.valuations.generators import random_xor_valuations

SETTINGS = settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def disk_scenes(draw, max_n=60):
    n = draw(st.integers(min_value=2, max_value=max_n))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    rng = np.random.default_rng(seed)
    extent = draw(st.floats(min_value=0.5, max_value=4.0))
    points = rng.random((n, 2)) * extent
    radii = rng.uniform(0.03, 0.2, size=n)
    return points, radii


@st.composite
def link_scenes(draw, max_n=50):
    n = draw(st.integers(min_value=2, max_value=max_n))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    rng = np.random.default_rng(seed)
    extent = draw(st.floats(min_value=0.5, max_value=3.0))
    senders = rng.random((n, 2)) * extent
    angle = rng.uniform(0, 2 * np.pi, size=n)
    length = rng.uniform(0.01, 0.12, size=n)
    receivers = senders + length[:, None] * np.stack(
        [np.cos(angle), np.sin(angle)], axis=1
    )
    return links_from_arrays(senders, receivers)


def assert_graphs_equal(dense, sparse):
    assert sparse.is_sparse
    assert dense.n == sparse.n and dense.m == sparse.m
    assert np.array_equal(dense.adjacency, sparse.csr.toarray())


@SETTINGS
@given(disk_scenes())
def test_disk_graph_parity(scene):
    points, radii = scene
    dense = disk_graph(points, radii, method="dense")
    sparse = disk_graph(points, radii, method="spatial")
    assert_graphs_equal(dense, sparse)


@SETTINGS
@given(disk_scenes(max_n=40))
def test_graph_square_parity(scene):
    points, radii = scene
    dense = graph_square(disk_graph(points, radii, method="dense"))
    sparse = graph_square(disk_graph(points, radii, method="spatial"))
    assert_graphs_equal(dense, sparse)


@SETTINGS
@given(link_scenes(), st.floats(min_value=0.2, max_value=2.5))
def test_protocol_graph_parity(links, delta):
    dense = protocol_conflict_graph(links, delta, method="dense")
    sparse = protocol_conflict_graph(links, delta, method="spatial")
    assert_graphs_equal(dense, sparse)


@SETTINGS
@given(link_scenes(), st.floats(min_value=0.2, max_value=2.5))
def test_ieee80211_graph_parity(links, delta):
    dense = ieee80211_conflict_graph(links, delta, method="dense")
    sparse = ieee80211_conflict_graph(links, delta, method="spatial")
    assert_graphs_equal(dense, sparse)


@SETTINGS
@given(disk_scenes(max_n=25))
def test_distance2_matching_parity(scene):
    points, radii = scene
    host_dense = DiskInstance(points, radii, method="dense").graph
    host_sparse = DiskInstance(points, radii, method="spatial").graph
    md, ed = distance2_matching_graph(host_dense, method="dense")
    ms, es = distance2_matching_graph(host_sparse, method="spatial")
    assert ed == es
    assert_graphs_equal(md, ms)


@SETTINGS
@given(link_scenes(max_n=35), st.floats(min_value=1e-4, max_value=0.5))
def test_physical_sparse_equals_thresholded_dense(links, cutoff):
    power = linear_power(links, 3.0)
    dense = physical_model_structure(links, power, 3.0, 1.5, 0.0)
    sparse = sparse_physical_structure(
        links, power, 3.0, 1.5, 0.0, weight_cutoff=cutoff
    )
    expected = dense.graph.weights.copy()
    expected[expected < cutoff] = 0.0
    assert np.array_equal(expected, sparse.graph.w_csr.toarray())
    assert sparse.metadata["epsilon"] == dense.metadata["physical_model"].epsilon(power)


def test_auto_method_threshold():
    assert resolve_method("auto", SPATIAL_INDEX_MIN_N - 1) == "dense"
    assert resolve_method("auto", SPATIAL_INDEX_MIN_N) == "spatial"
    assert resolve_method("auto", 10**6, supported=False) == "dense"
    with pytest.raises(ValueError):
        resolve_method("spatial", 10, supported=False)
    with pytest.raises(ValueError):
        resolve_method("fastest", 10)


# ----------------------------------------------------------------------
# sparse compile + rounding kernels: bit-identical solves
# ----------------------------------------------------------------------
def _solve_pair(problem_dense, problem_sparse, seed=1234, attempts=3):
    rd = CompiledAuction(problem_dense).solve(seed=seed, rounding_attempts=attempts)
    rs = CompiledAuction(problem_sparse).solve(seed=seed, rounding_attempts=attempts)
    assert rd.allocation == rs.allocation
    assert rd.welfare == rs.welfare
    assert rd.lp_value == rs.lp_value
    assert rd.feasible and rs.feasible


def _compare_compiled(struct_dense, struct_sparse):
    cd = _build_structure(struct_dense)
    cs = _build_structure(struct_sparse)
    assert not cd.sparse and cs.sparse
    assert np.array_equal(cd.affected_flat, cs.affected_flat)
    assert np.array_equal(cd.affected_off, cs.affected_off)
    assert np.array_equal(cd.coeff_flat, cs.coeff_flat)
    assert all(np.array_equal(a, b) for a, b in zip(cd.backward, cs.backward))


@pytest.mark.parametrize("model", ["disk", "distance2", "protocol"])
def test_sparse_compile_and_rounding_bit_identical_unweighted(model):
    rng = np.random.default_rng(99)
    if model in ("disk", "distance2"):
        points = rng.random((80, 2)) * 1.5
        radii = rng.uniform(0.04, 0.12, size=80)
        build = disk_transmitter_model if model == "disk" else distance2_coloring_model
        sd = build(DiskInstance(points, radii, method="dense"))
        ss = build(DiskInstance(points, radii, method="spatial"))
    else:
        senders = rng.random((70, 2)) * 1.2
        angle = rng.uniform(0, 2 * np.pi, size=70)
        receivers = senders + 0.05 * np.stack([np.cos(angle), np.sin(angle)], axis=1)
        links = links_from_arrays(senders, receivers)
        links2 = links_from_arrays(senders, receivers)
        sd = protocol_model(links, 1.0, method="dense")
        ss = protocol_model(links2, 1.0, method="spatial")
    _compare_compiled(sd, ss)
    n = sd.n
    vals = random_xor_valuations(n, 6, seed=5)
    _solve_pair(AuctionProblem(sd, 6, vals), AuctionProblem(ss, 6, vals))


def test_sparse_compile_and_rounding_bit_identical_weighted():
    """Physical model: a CSR-backed weighted structure (sparse kernels, flat
    backward weights) rounds identically to a dense twin of the same graph."""
    rng = np.random.default_rng(7)
    senders = rng.random((60, 2)) * 1.2
    angle = rng.uniform(0, 2 * np.pi, size=60)
    receivers = senders + 0.05 * np.stack([np.cos(angle), np.sin(angle)], axis=1)
    links = links_from_arrays(senders, receivers)
    power = linear_power(links, 3.0)
    sparse = sparse_physical_structure(links, power, 3.0, 1.5, 0.0, weight_cutoff=1e-3)
    dense = WeightedConflictStructure(
        graph=WeightedConflictGraph(sparse.graph.w_csr.toarray()),
        ordering=sparse.ordering,
        rho=sparse.rho,
        metadata=dict(sparse.metadata),
    )
    cd = _build_structure(dense)
    cs = _build_structure(sparse)
    assert cs.sparse and cs.backward_wbar is None and cs.backward_w is not None
    assert all(np.array_equal(a, b) for a, b in zip(cd.backward, cs.backward))
    vals = random_xor_valuations(60, 6, seed=11)
    _solve_pair(AuctionProblem(dense, 6, vals), AuctionProblem(sparse, 6, vals))


def test_sparse_structure_metadata_and_rho():
    rng = np.random.default_rng(3)
    senders = rng.random((50, 2))
    receivers = senders + 0.03
    links = links_from_arrays(senders, receivers)
    power = linear_power(links, 3.0)
    st_ = sparse_physical_structure(links, power, 3.0, 1.5, 0.0, weight_cutoff=1e-2)
    assert st_.metadata["model"] == "physical-sparse"
    assert st_.rho >= 1.0
    with pytest.raises(ValueError):
        sparse_physical_structure(links, power, weight_cutoff=0.0)
    with pytest.raises(ValueError):
        sparse_physical_structure(links, power, weight_cutoff=1.5)
