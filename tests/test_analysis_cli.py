"""CLI contract for ``python -m repro.analysis`` (reprolint): exit
codes, JSON output, baseline round-trip, and the self-run gate asserting
the repo itself is clean against the committed baseline."""

from __future__ import annotations

import json
import textwrap
from pathlib import Path

import pytest

from repro.analysis.__main__ import main
from repro.analysis.baseline import Baseline, split_findings
from repro.analysis.engine import analyze_paths

REPO_ROOT = Path(__file__).resolve().parents[1]

DIRTY = """
import time

def stamp():
    return time.time()
"""

CLEAN = """
def stamp():
    return 0.0
"""


@pytest.fixture
def dirty_file(tmp_path: Path) -> Path:
    path = tmp_path / "mod.py"
    path.write_text(textwrap.dedent(DIRTY))
    return path


def test_exit_zero_on_clean_tree(tmp_path, capsys):
    (tmp_path / "mod.py").write_text(textwrap.dedent(CLEAN))
    assert main([str(tmp_path)]) == 0
    assert "0 new finding(s)" in capsys.readouterr().out


def test_exit_one_on_findings(dirty_file, capsys):
    assert main([str(dirty_file)]) == 1
    out = capsys.readouterr().out
    assert "wall-clock" in out and "1 new finding(s)" in out


def test_exit_two_on_missing_path(tmp_path, capsys):
    assert main([str(tmp_path / "nope")]) == 2
    assert "no such path" in capsys.readouterr().err


def test_json_output_is_machine_readable(dirty_file, capsys):
    assert main([str(dirty_file), "--json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["baselined"] == 0 and payload["stale_baseline"] == []
    (finding,) = payload["findings"]
    assert finding["rule"] == "wall-clock"
    assert finding["path"] == "mod.py"
    assert finding["line"] == 5


def test_list_rules_mentions_every_family(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for family in ("determinism", "concurrency", "parity"):
        assert family in out
    for rule_id in ("global-rng", "guarded-by", "kernel-mutation"):
        assert rule_id in out


def test_baseline_round_trip(dirty_file, tmp_path, capsys):
    baseline = tmp_path / "baseline.json"
    # 1. record the current findings as the accepted debt
    assert main([str(dirty_file), "--baseline", str(baseline), "--baseline-update"]) == 0
    assert "baseline updated" in capsys.readouterr().out
    saved = json.loads(baseline.read_text())
    assert saved["version"] == 1 and len(saved["findings"]) == 1
    # 2. unchanged tree is clean against the baseline
    assert main([str(dirty_file), "--baseline", str(baseline)]) == 0
    assert "1 baselined" in capsys.readouterr().out
    # 3. fixing the violation makes the baseline entry stale -> exit 1,
    #    forcing the baseline to be re-shrunk (debt only ratchets down)
    dirty_file.write_text(textwrap.dedent(CLEAN))
    assert main([str(dirty_file), "--baseline", str(baseline)]) == 1
    assert "stale" in capsys.readouterr().out
    # 4. refreshing the baseline empties it
    assert main([str(dirty_file), "--baseline", str(baseline), "--baseline-update"]) == 0
    assert json.loads(baseline.read_text())["findings"] == []


def test_baseline_matches_on_context_not_line_number(dirty_file, tmp_path):
    baseline_path = tmp_path / "baseline.json"
    findings = analyze_paths([dirty_file])
    Baseline.from_findings(findings).save(baseline_path)
    # shift the violation down two lines: same context line, new lineno
    dirty_file.write_text("# moved\n# moved\n" + textwrap.dedent(DIRTY))
    moved = analyze_paths([dirty_file])
    new, stale = split_findings(moved, Baseline.load(baseline_path))
    assert new == [] and stale == []


def test_baseline_budget_counts_duplicates(tmp_path):
    path = tmp_path / "mod.py"
    path.write_text(
        textwrap.dedent(
            """
            import time

            def a():
                return time.time()

            def b():
                return time.time()
            """
        )
    )
    findings = analyze_paths([path])
    assert len(findings) == 2
    # both findings share the same (rule, path, context) key — the
    # baseline is a multiset, so a budget of 1 absorbs exactly one
    baseline = Baseline.from_findings(findings[:1])
    new, stale = split_findings(findings, baseline)
    assert len(new) == 1 and stale == []


def test_missing_baseline_file_means_empty(tmp_path, dirty_file):
    assert Baseline.load(tmp_path / "absent.json").entries == {}
    assert main([str(dirty_file), "--baseline", str(tmp_path / "absent.json")]) == 1


def test_self_run_repo_is_clean_against_committed_baseline():
    """The gate CI enforces: the repo's own sources have no findings
    beyond the committed baseline."""
    assert (
        main(
            [
                str(REPO_ROOT / "src" / "repro"),
                "--baseline",
                str(REPO_ROOT / "reprolint-baseline.json"),
            ]
        )
        == 0
    )
