"""HTTP gateway: endpoints, error statuses, deadlines, chaos over the wire.

Every test here exercises a real localhost socket — the asyncio gateway
on its loop thread, driven either by the stdlib ``http.client`` (to pin
raw HTTP behavior: statuses, error codes, keep-alive) or by the typed
clients in :mod:`repro.service.client`.
"""

from __future__ import annotations

import dataclasses
import http.client
import inspect
import json

import pytest

import repro.service
from repro.experiments.workloads import metro_disk_scene
from repro.io import _structure_to_dict
from repro.service import (
    AuctionRequest,
    AuctionResponse,
    AuctionService,
    DeadlineExceeded,
    FaultPlan,
    FaultSpec,
    GatewayServer,
    SCHEMA_VERSION,
    Scenario,
    ShedError,
    SyncGatewayClient,
    run_scenario,
    scenario_library,
    scene_fingerprint,
)
from repro.service.wire import request_to_wire
from repro.valuations.generators import random_xor_valuations

N = 24
K = 3


class TestExportsSync:
    """The package's ``__all__`` is exactly its documented public surface."""

    def test_all_names_resolve(self):
        for name in repro.service.__all__:
            assert getattr(repro.service, name, None) is not None, name

    def test_all_matches_public_attributes(self):
        public = {
            name
            for name in dir(repro.service)
            if not name.startswith("_")
            and not inspect.ismodule(getattr(repro.service, name))
        }
        assert public == set(repro.service.__all__)

    def test_no_duplicates(self):
        assert len(repro.service.__all__) == len(set(repro.service.__all__))

    def test_canonical_request_and_response_are_the_wire_types(self):
        from repro.service import wire

        assert repro.service.AuctionRequest is wire.AuctionRequest
        assert repro.service.AuctionResponse is wire.AuctionResponse


@pytest.fixture(scope="module")
def scene():
    return metro_disk_scene(N, seed=501)


@pytest.fixture(scope="module")
def served(scene):
    """One gateway over a serial service, shared by the read-only tests."""
    service = AuctionService(executor="serial", coalesce_window=0.0)
    scene_id = service.register_scene(scene)
    with GatewayServer(service) as server:
        with SyncGatewayClient(port=server.port) as client:
            yield server, client, scene_id
    service.close()


def http_request(server, method, path, body=None, headers=None):
    """Raw stdlib exchange; returns (status, decoded JSON body)."""
    conn = http.client.HTTPConnection("127.0.0.1", server.port, timeout=60)
    try:
        conn.request(
            method,
            path,
            body=None if body is None else json.dumps(body),
            headers=headers or {},
        )
        response = conn.getresponse()
        payload = json.loads(response.read())
        return response.status, payload
    finally:
        conn.close()


def make_request(scene_id, seed=1, **kwargs):
    vals = kwargs.pop("valuations", None)
    if vals is None:
        vals = random_xor_valuations(N, K, seed=seed)
    return AuctionRequest(scene_id, K, vals, seed=seed, **kwargs)


class TestEndpoints:
    def test_health(self, served):
        server, client, _ = served
        status, payload = http_request(server, "GET", "/v1/health")
        assert status == 200
        assert payload["healthy"] is True
        assert payload["schema_version"] == SCHEMA_VERSION
        assert client.health() is True

    def test_register_scene_returns_fingerprint(self, served, scene):
        server, _, scene_id = served
        status, payload = http_request(
            server, "POST", "/v1/scenes", {"structure": _structure_to_dict(scene)}
        )
        assert status == 200
        assert payload["scene_id"] == scene_id == scene_fingerprint(scene)
        assert payload["n"] == N

    def test_register_scene_via_client(self, served, scene):
        _, client, scene_id = served
        assert client.register_scene(scene) == scene_id

    def test_solve_matches_in_process(self, served):
        server, client, scene_id = served
        request = make_request(scene_id, seed=11)
        response = client.solve(request)
        assert isinstance(response, AuctionResponse)
        assert response.scene_id == scene_id
        assert response.seed == 11
        assert "solve_seconds" in response.timing
        [expected] = server.gateway.service.solve_batch(
            [make_request(scene_id, seed=11)]
        )
        assert response == expected

    def test_solve_batch_mixes_success_and_typed_errors(self, served):
        _, client, scene_id = served
        outcomes = client.solve_batch(
            [
                make_request(scene_id, seed=21),
                make_request("0" * 16, seed=22),  # unregistered scene
            ]
        )
        assert isinstance(outcomes[0], AuctionResponse)
        assert isinstance(outcomes[1], KeyError)

    def test_metrics_include_gateway_counters(self, served):
        _, client, _ = served
        snapshot = client.metrics()
        assert snapshot["schema_version"] == SCHEMA_VERSION
        counters = snapshot["gateway"]
        assert counters["requests"] > 0
        assert set(counters) == {
            "connections",
            "requests",
            "responses_ok",
            "responses_error",
            "refused_connections",
            "dropped_responses",
            "journal_hits",
            "journal_coalesced",
            "journal_misses",
            "journal_evictions",
            "duplicate_solves",
        }

    def test_keep_alive_serves_many_requests_per_connection(self, served):
        server, _, _ = served
        conn = http.client.HTTPConnection("127.0.0.1", server.port, timeout=60)
        try:
            for _ in range(3):
                conn.request("GET", "/v1/health")
                response = conn.getresponse()
                assert response.status == 200
                response.read()
        finally:
            conn.close()


class TestErrorStatuses:
    def test_unknown_scene_is_404_and_typed(self, served):
        server, client, _ = served
        status, payload = http_request(
            server, "POST", "/v1/solve", request_to_wire(make_request("f" * 16))
        )
        assert status == 404
        assert payload["error_code"] == "unknown-scene"
        with pytest.raises(KeyError):
            client.solve(make_request("f" * 16))

    def test_malformed_json_is_400(self, served):
        server, _, _ = served
        conn = http.client.HTTPConnection("127.0.0.1", server.port, timeout=60)
        try:
            conn.request("POST", "/v1/solve", body="{not json")
            response = conn.getresponse()
            payload = json.loads(response.read())
        finally:
            conn.close()
        assert response.status == 400
        assert payload["error_code"] == "bad-request"

    def test_wrong_schema_version_is_400(self, served):
        server, _, scene_id = served
        wire = request_to_wire(make_request(scene_id))
        wire["schema_version"] = SCHEMA_VERSION + 1
        status, payload = http_request(server, "POST", "/v1/solve", wire)
        assert status == 400
        assert payload["error_code"] == "bad-request"
        assert "schema_version" in payload["message"]

    def test_truthful_mode_is_not_wire_servable(self, served):
        server, _, scene_id = served
        status, payload = http_request(
            server,
            "POST",
            "/v1/solve",
            request_to_wire(make_request(scene_id, mode="truthful")),
        )
        assert status == 400
        assert payload["error_code"] == "bad-request"

    def test_unknown_path_is_404(self, served):
        server, _, _ = served
        status, payload = http_request(server, "GET", "/v1/oracle")
        assert status == 404
        assert payload["error_code"] == "not-found"

    def test_nonpositive_deadline_is_400(self, served):
        server, _, scene_id = served
        status, payload = http_request(
            server,
            "POST",
            "/v1/solve",
            request_to_wire(make_request(scene_id)),
            headers={"X-Auction-Deadline": "-1.0"},
        )
        assert status == 400
        assert payload["error_code"] == "bad-request"

    def test_non_numeric_deadline_header_is_400(self, served):
        server, _, scene_id = served
        status, payload = http_request(
            server,
            "POST",
            "/v1/solve",
            request_to_wire(make_request(scene_id)),
            headers={"X-Auction-Deadline": "soon"},
        )
        assert status == 400
        assert payload["error_code"] == "bad-request"


class TestSizeCaps:
    """Oversized requests produce typed 413/431 wire errors over raw
    HTTP — never a bare connection close."""

    @pytest.fixture()
    def capped(self, scene):
        service = AuctionService(executor="serial", coalesce_window=0.0)
        scene_id = service.register_scene(scene)
        with GatewayServer(
            service, max_header_bytes=2048, max_body_bytes=8192
        ) as server:
            yield server, scene_id
        service.close()

    def test_oversized_body_is_typed_413(self, capped):
        server, scene_id = capped
        wire = request_to_wire(make_request(scene_id))
        wire["metadata"] = {"padding": "x" * 16384}
        conn = http.client.HTTPConnection("127.0.0.1", server.port, timeout=60)
        try:
            conn.request("POST", "/v1/solve", body=json.dumps(wire))
            response = conn.getresponse()
            payload = json.loads(response.read())
            assert response.status == 413
            assert response.getheader("Connection") == "close"
        finally:
            conn.close()
        assert payload["error_code"] == "payload-too-large"
        assert payload["status"] == "error"
        assert "8192" in payload["message"]

    def test_oversized_header_section_is_typed_431(self, capped):
        server, _ = capped
        conn = http.client.HTTPConnection("127.0.0.1", server.port, timeout=60)
        try:
            conn.putrequest("GET", "/v1/health")
            conn.putheader("X-Padding", "p" * 4096)
            conn.endheaders()
            response = conn.getresponse()
            payload = json.loads(response.read())
            assert response.status == 431
            assert response.getheader("Connection") == "close"
        finally:
            conn.close()
        assert payload["error_code"] == "header-too-large"
        assert payload["status"] == "error"

    def test_within_caps_still_serves(self, capped):
        server, scene_id = capped
        status, payload = http_request(
            server, "POST", "/v1/solve", request_to_wire(make_request(scene_id))
        )
        assert status == 200
        assert payload["status"] == "ok"


class TestDeadlinePropagation:
    def test_header_reaches_the_ewma_triage(self, scene):
        """A low budget against a huge solve-time hint degrades to greedy —
        proof the header value drives the same server-side triage as an
        in-process deadline."""
        service = AuctionService(
            executor="serial",
            coalesce_window=0.0,
            solve_time_hint=30.0,
            degrade_headroom=1.0,
        )
        scene_id = service.register_scene(scene)
        try:
            with GatewayServer(service) as server:
                status, payload = http_request(
                    server,
                    "POST",
                    "/v1/solve",
                    request_to_wire(make_request(scene_id, seed=31)),
                    headers={"X-Auction-Deadline": "5.0"},
                )
            assert status == 200
            assert payload["details"] == {"degraded": True, "fallback": "greedy"}
        finally:
            service.close()

    def test_header_overrides_body_deadline(self, scene):
        """Body says 120s (would solve in full); the 5s header wins."""
        service = AuctionService(
            executor="serial",
            coalesce_window=0.0,
            solve_time_hint=30.0,
            degrade_headroom=1.0,
        )
        scene_id = service.register_scene(scene)
        try:
            with GatewayServer(service) as server:
                status, payload = http_request(
                    server,
                    "POST",
                    "/v1/solve",
                    request_to_wire(make_request(scene_id, seed=32, deadline=120.0)),
                    headers={"X-Auction-Deadline": "5.0"},
                )
            assert status == 200
            assert payload["details"].get("degraded") is True
        finally:
            service.close()

    def test_expired_deadline_is_504(self, scene):
        """A request queued behind a browned-out solve fails typed with
        DeadlineExceeded — surfaced over the wire as HTTP 504."""
        plan = FaultPlan(
            [FaultSpec(site="service.solve", kind="slow", delay=0.4)]
        )
        service = AuctionService(
            executor="serial",
            coalesce_window=0.0,
            fault_plan=plan,
            degrade_headroom=0.0,
        )
        scene_id = service.register_scene(scene)
        try:
            with GatewayServer(service) as server:
                with SyncGatewayClient(port=server.port) as client:
                    blocker = client.submit(make_request(scene_id, seed=41))
                    doomed = client.submit(
                        make_request(scene_id, seed=42, deadline=0.05)
                    )
                    assert blocker.result(timeout=60).feasible
                    with pytest.raises(DeadlineExceeded):
                        doomed.result(timeout=60)
        finally:
            service.close()


class TestShedOverTheWire:
    def test_admission_control_sheds_arrive_as_typed_503(self, scene):
        plan = FaultPlan(
            [FaultSpec(site="service.solve", kind="slow", delay=0.2)]
        )
        service = AuctionService(
            executor="serial", coalesce_window=0.0, max_queue=1, fault_plan=plan
        )
        scene_id = service.register_scene(scene)
        try:
            with GatewayServer(service) as server:
                with SyncGatewayClient(port=server.port) as client:
                    futures = [
                        client.submit(make_request(scene_id, seed=50 + i))
                        for i in range(8)
                    ]
                    outcomes = []
                    for future in futures:
                        try:
                            outcomes.append(future.result(timeout=60))
                        except ShedError as exc:
                            outcomes.append(exc)
                    sheds = [o for o in outcomes if isinstance(o, ShedError)]
                    served_ok = [
                        o for o in outcomes if isinstance(o, AuctionResponse)
                    ]
                    assert sheds, "queue of 1 under a slow solve must shed"
                    assert served_ok, "some requests must still be served"
                    assert len(sheds) + len(served_ok) == 8
        finally:
            service.close()


class TestChaosOverGateway:
    """The crash-storm/chaos invariants hold across the HTTP boundary."""

    def tiny(self, scenario: Scenario, n: int = 16, **overrides) -> Scenario:
        return dataclasses.replace(
            scenario, num_requests=n, scene_size=12, num_scenes=1, **overrides
        )

    def test_fault_free_scenario_is_clean_over_http(self):
        report = run_scenario(
            self.tiny(scenario_library()["dense_metro"], n=16),
            transport="gateway",
        )
        assert report.ok(), report.invariants
        assert report.transport == "gateway"
        assert report.completed == 16
        assert report.replay_mismatches == 0

    def test_injected_errors_stay_typed_over_http(self):
        scenario = self.tiny(scenario_library()["dense_metro"], n=20)
        plan = FaultPlan(
            [FaultSpec(site="service.solve", kind="error", probability=0.3)],
            seed=5,
        )
        report = run_scenario(scenario, fault_plan=plan, transport="gateway")
        assert report.ok(), report.invariants
        assert 0 < report.failed_typed < report.accepted
        assert report.completed + report.failed_typed == report.accepted

    def test_overload_sheds_are_counted_not_failed_over_http(self):
        base = scenario_library()["flash_crowd_burst"]
        scenario = self.tiny(base, n=32)
        scenario = dataclasses.replace(
            scenario, service={**scenario.service, "max_queue": 4}
        )
        report = run_scenario(scenario, transport="gateway")
        assert report.ok(), report.invariants
        assert report.shed > 0
        assert report.accepted + report.shed == 32
        assert report.completed == report.accepted

    def test_unknown_transport_rejected(self):
        with pytest.raises(ValueError, match="transport"):
            run_scenario(
                self.tiny(scenario_library()["dense_metro"], n=1),
                transport="carrier-pigeon",
            )
