"""Tests for the conditional-expectation derandomization."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.auction_lp import AuctionLP
from repro.core.conflict_resolution import check_condition5, make_fully_feasible
from repro.core.derandomize import derandomize_rounding
from repro.core.rounding import default_scale


class TestDerandomizeUnweighted:
    def test_deterministic(self, protocol_problem):
        lp = AuctionLP(protocol_problem).solve()
        a = derandomize_rounding(protocol_problem, lp)
        b = derandomize_rounding(protocol_problem, lp)
        assert a.allocation == b.allocation

    def test_feasible(self, protocol_problem):
        lp = AuctionLP(protocol_problem).solve()
        result = derandomize_rounding(protocol_problem, lp)
        assert protocol_problem.is_feasible(result.allocation)

    def test_meets_theorem3_bound_deterministically(self, protocol_problem):
        """welfare ≥ b*/(8√k ρ) with certainty, not just in expectation."""
        lp = AuctionLP(protocol_problem).solve()
        result = derandomize_rounding(protocol_problem, lp)
        k, rho = protocol_problem.k, protocol_problem.rho
        bound = lp.value / (8.0 * math.sqrt(k) * rho)
        assert protocol_problem.welfare(result.allocation) >= bound - 1e-9

    def test_estimator_lower_bounds_welfare(self, protocol_problem):
        lp = AuctionLP(protocol_problem).solve()
        result = derandomize_rounding(protocol_problem, lp)
        welfare = protocol_problem.welfare(result.allocation)
        # The chosen class's estimator value lower-bounds the final welfare.
        assert welfare >= max(result.estimator_values) - 1e-9

    def test_estimator_at_least_expectation(self, protocol_problem):
        # F after fixing all vertices ≥ E[F] = initial estimator value.
        lp = AuctionLP(protocol_problem).solve()
        from repro.core.derandomize import _Estimator

        entries = [
            (col.vertex, col.bundle, col.value, x) for col, x in lp.support()
        ]
        est = _Estimator(protocol_problem, entries, default_scale(protocol_problem))
        initial = est.value(est.q.copy())
        q = est.q.copy()
        for v in sorted(est.vertex_cols):
            est.fix_best_choice(v, q)
        assert est.value(q) >= initial - 1e-9

    def test_beats_expected_randomized(self, protocol_problem):
        """Derandomized tentative F ≥ E[F]: compare against the sampled mean."""
        from repro.core.rounding import round_unweighted

        lp = AuctionLP(protocol_problem).solve()
        det = derandomize_rounding(protocol_problem, lp)
        det_welfare = protocol_problem.welfare(det.allocation)
        rng = np.random.default_rng(7)
        rand_mean = np.mean(
            [
                protocol_problem.welfare(
                    round_unweighted(protocol_problem, lp, rng)[0]
                )
                for _ in range(40)
            ]
        )
        # Not a theorem (best-of-two classes differ), but holds comfortably
        # on these instances and guards against estimator regressions.
        assert det_welfare >= 0.5 * rand_mean


class SeedEstimator:
    """The seed-era estimator, kept verbatim as the parity anchor: O(m²)
    Python penalty construction and full-F re-evaluation per choice."""

    def __init__(self, problem, entries, scale):
        import scipy.sparse as sp

        self.values = np.array([e[2] for e in entries])
        self.q = np.array([e[3] / scale for e in entries])
        self.vertex_cols = {}
        for i, (v, _b, _val, _x) in enumerate(entries):
            self.vertex_cols.setdefault(v, []).append(i)
        pen = 2.0 if problem.is_weighted else 1.0
        pos = problem.ordering.pos
        if problem.is_weighted:
            kappa = problem.graph.wbar_matrix
        else:
            kappa = problem.graph.adjacency.astype(float)
        rows, cols, data = [], [], []
        for a, (v, bundle_a, val_a, _xa) in enumerate(entries):
            for b, (u, bundle_b, _vb, _xb) in enumerate(entries):
                if u == v or pos[u] >= pos[v]:
                    continue
                if kappa[u, v] <= 0 or not (bundle_a & bundle_b):
                    continue
                rows.append(a)
                cols.append(b)
                data.append(pen * val_a * kappa[u, v])
        m = len(entries)
        self.penalty = sp.coo_matrix((data, (rows, cols)), shape=(m, m)).tocsr()

    def value(self, q):
        return float(self.values @ q - q @ (self.penalty @ q))

    def fix_best_choice(self, vertex, q):
        cols = self.vertex_cols.get(vertex, [])
        if not cols:
            return
        best_cols, best_val = [], -math.inf
        for choice in [None, *cols]:
            for c in cols:
                q[c] = 0.0
            if choice is not None:
                q[choice] = 1.0
            val = self.value(q)
            if val > best_val:
                best_val = val
                best_cols = [] if choice is None else [choice]
        for c in cols:
            q[c] = 0.0
        for c in best_cols:
            q[c] = 1.0


class TestVectorizedEstimatorParity:
    """The PR 5 vectorized estimator must reproduce the seed estimator:
    bit-equal penalty matrices, the same fix order, and the same
    allocation (sub-ulp gain ties aside — none occur on these anchors)."""

    def _run(self, est_cls, problem, lp):
        from repro.core.derandomize import _Estimator  # noqa: F401

        entries = [
            (col.vertex, col.bundle, col.value, x) for col, x in lp.support()
        ]
        est = est_cls(problem, entries, default_scale(problem))
        q = est.q.copy()
        for v in sorted(est.vertex_cols):
            est.fix_best_choice(v, q)
        tentative = {
            v: b for i, (v, b, _val, _x) in enumerate(entries) if q[i] > 0.5
        }
        return est, tentative

    @pytest.mark.parametrize("fixture", ["protocol_problem", "weighted_problem"])
    def test_matches_seed_estimator(self, fixture, request):
        from repro.core.derandomize import _Estimator

        problem = request.getfixturevalue(fixture)
        lp = AuctionLP(problem).solve()
        ref_est, ref_alloc = self._run(SeedEstimator, problem, lp)
        new_est, new_alloc = self._run(_Estimator, problem, lp)
        diff = ref_est.penalty - new_est.penalty
        assert diff.nnz == 0 or abs(diff).max() == 0.0
        assert ref_alloc == new_alloc

    def test_matches_on_sparse_backed_metro_scene(self):
        from repro.core.derandomize import _Estimator
        from repro.experiments.workloads import metro_disk_auction

        problem = metro_disk_auction(60, 4, seed=404, method="spatial")
        assert problem.graph.is_sparse
        lp = AuctionLP(problem).solve()
        _, ref_alloc = self._run(SeedEstimator, problem, lp)
        _, new_alloc = self._run(_Estimator, problem, lp)
        assert ref_alloc == new_alloc


class TestDerandomizeWeighted:
    def test_partly_feasible_and_bound(self, weighted_problem):
        lp = AuctionLP(weighted_problem).solve()
        result = derandomize_rounding(weighted_problem, lp)
        assert check_condition5(weighted_problem, result.allocation)
        k, rho = weighted_problem.k, weighted_problem.rho
        bound = lp.value / (16.0 * math.sqrt(k) * rho)
        assert weighted_problem.welfare(result.allocation) >= bound - 1e-9

    def test_full_pipeline_meets_combined_bound(self, weighted_problem):
        lp = AuctionLP(weighted_problem).solve()
        partly = derandomize_rounding(weighted_problem, lp).allocation
        result = make_fully_feasible(weighted_problem, partly)
        assert weighted_problem.is_feasible(result.allocation)
        n = max(2, weighted_problem.n)
        k, rho = weighted_problem.k, weighted_problem.rho
        bound = lp.value / (
            16.0 * math.sqrt(k) * rho * math.ceil(math.log2(n))
        )
        assert weighted_problem.welfare(result.allocation) >= bound - 1e-9

    def test_no_split_variant(self, weighted_problem):
        lp = AuctionLP(weighted_problem).solve()
        result = derandomize_rounding(weighted_problem, lp, split=False)
        assert len(result.estimator_values) == 1
        assert check_condition5(weighted_problem, result.allocation)
