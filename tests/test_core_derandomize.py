"""Tests for the conditional-expectation derandomization."""

from __future__ import annotations

import math

import numpy as np

from repro.core.auction_lp import AuctionLP
from repro.core.conflict_resolution import check_condition5, make_fully_feasible
from repro.core.derandomize import derandomize_rounding
from repro.core.rounding import default_scale


class TestDerandomizeUnweighted:
    def test_deterministic(self, protocol_problem):
        lp = AuctionLP(protocol_problem).solve()
        a = derandomize_rounding(protocol_problem, lp)
        b = derandomize_rounding(protocol_problem, lp)
        assert a.allocation == b.allocation

    def test_feasible(self, protocol_problem):
        lp = AuctionLP(protocol_problem).solve()
        result = derandomize_rounding(protocol_problem, lp)
        assert protocol_problem.is_feasible(result.allocation)

    def test_meets_theorem3_bound_deterministically(self, protocol_problem):
        """welfare ≥ b*/(8√k ρ) with certainty, not just in expectation."""
        lp = AuctionLP(protocol_problem).solve()
        result = derandomize_rounding(protocol_problem, lp)
        k, rho = protocol_problem.k, protocol_problem.rho
        bound = lp.value / (8.0 * math.sqrt(k) * rho)
        assert protocol_problem.welfare(result.allocation) >= bound - 1e-9

    def test_estimator_lower_bounds_welfare(self, protocol_problem):
        lp = AuctionLP(protocol_problem).solve()
        result = derandomize_rounding(protocol_problem, lp)
        welfare = protocol_problem.welfare(result.allocation)
        # The chosen class's estimator value lower-bounds the final welfare.
        assert welfare >= max(result.estimator_values) - 1e-9

    def test_estimator_at_least_expectation(self, protocol_problem):
        # F after fixing all vertices ≥ E[F] = initial estimator value.
        lp = AuctionLP(protocol_problem).solve()
        from repro.core.derandomize import _Estimator

        entries = [
            (col.vertex, col.bundle, col.value, x) for col, x in lp.support()
        ]
        est = _Estimator(protocol_problem, entries, default_scale(protocol_problem))
        initial = est.value(est.q.copy())
        q = est.q.copy()
        for v in sorted(est.vertex_cols):
            est.fix_best_choice(v, q)
        assert est.value(q) >= initial - 1e-9

    def test_beats_expected_randomized(self, protocol_problem):
        """Derandomized tentative F ≥ E[F]: compare against the sampled mean."""
        from repro.core.rounding import round_unweighted

        lp = AuctionLP(protocol_problem).solve()
        det = derandomize_rounding(protocol_problem, lp)
        det_welfare = protocol_problem.welfare(det.allocation)
        rng = np.random.default_rng(7)
        rand_mean = np.mean(
            [
                protocol_problem.welfare(
                    round_unweighted(protocol_problem, lp, rng)[0]
                )
                for _ in range(40)
            ]
        )
        # Not a theorem (best-of-two classes differ), but holds comfortably
        # on these instances and guards against estimator regressions.
        assert det_welfare >= 0.5 * rand_mean


class TestDerandomizeWeighted:
    def test_partly_feasible_and_bound(self, weighted_problem):
        lp = AuctionLP(weighted_problem).solve()
        result = derandomize_rounding(weighted_problem, lp)
        assert check_condition5(weighted_problem, result.allocation)
        k, rho = weighted_problem.k, weighted_problem.rho
        bound = lp.value / (16.0 * math.sqrt(k) * rho)
        assert weighted_problem.welfare(result.allocation) >= bound - 1e-9

    def test_full_pipeline_meets_combined_bound(self, weighted_problem):
        lp = AuctionLP(weighted_problem).solve()
        partly = derandomize_rounding(weighted_problem, lp).allocation
        result = make_fully_feasible(weighted_problem, partly)
        assert weighted_problem.is_feasible(result.allocation)
        n = max(2, weighted_problem.n)
        k, rho = weighted_problem.k, weighted_problem.rho
        bound = lp.value / (
            16.0 * math.sqrt(k) * rho * math.ceil(math.log2(n))
        )
        assert weighted_problem.welfare(result.allocation) >= bound - 1e-9

    def test_no_split_variant(self, weighted_problem):
        lp = AuctionLP(weighted_problem).solve()
        result = derandomize_rounding(weighted_problem, lp, split=False)
        assert len(result.estimator_values) == 1
        assert check_condition5(weighted_problem, result.allocation)
