"""Resilient edge: retries with idempotent replay, hedging, failover.

Every test drives a real localhost gateway.  The contracts pinned here
(DESIGN.md → "Resilient edge"):

* a lost response is recovered by a retry that replays from the
  gateway's idempotency journal — never by a second solve;
* retries are bounded, status-selective (never 400/404, never after a
  504 deadline), and deterministic: same trace + same fault plan means
  identical retry counts and bit-identical responses across runs;
* a hedged request races its primary under the same idempotency key,
  so hedging buys tail latency without duplicate work;
* killing one of two gateway replicas mid-trace loses no accepted
  request — the ReplicaSet evicts the dead replica and drains onto the
  survivor while the backing service stays healthy.
"""

from __future__ import annotations

import dataclasses
import time

import pytest

from repro.experiments.workloads import metro_disk_scene
from repro.service import (
    AuctionRequest,
    AuctionResponse,
    AuctionService,
    DeadlineExceeded,
    FaultPlan,
    FaultSpec,
    GatewayServer,
    RetryPolicy,
    SyncGatewayClient,
    SyncReplicaClient,
    run_scenario,
    scenario_library,
)
from repro.valuations.generators import random_xor_valuations

N = 16
K = 3


@pytest.fixture(scope="module")
def scene():
    return metro_disk_scene(N, seed=601)


def make_request(scene_id, seed=1, **kwargs):
    vals = kwargs.pop("valuations", None)
    if vals is None:
        vals = random_xor_valuations(N, K, seed=seed)
    return AuctionRequest(scene_id, K, vals, seed=seed, **kwargs)


def serve(scene, *, fault_plan=None, **service_kwargs):
    service = AuctionService(
        executor="serial", coalesce_window=0.0, fault_plan=fault_plan, **service_kwargs
    )
    scene_id = service.register_scene(scene)
    return service, scene_id


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ValueError, match="max_attempts"):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError, match="jitter"):
            RetryPolicy(jitter=1.5)

    def test_default_makes_no_retries(self):
        assert RetryPolicy().max_attempts == 1

    def test_backoff_is_deterministic_and_bounded(self):
        policy = RetryPolicy(
            max_attempts=5, backoff_base=0.01, backoff_factor=2.0, backoff_cap=0.05
        )
        delays = [policy.delay_before(i, token=99) for i in (1, 2, 3, 4)]
        assert delays == [policy.delay_before(i, token=99) for i in (1, 2, 3, 4)]
        assert all(0 < d <= 0.05 for d in delays)
        # a different token jitters differently, same token replays
        assert delays != [policy.delay_before(i, token=100) for i in (1, 2, 3, 4)]


class TestRetryRecovery:
    def test_dropped_response_is_replayed_from_journal(self, scene):
        """The at-least-once case: response lost after the solve — the
        retry is a journal hit, not a second solve."""
        plan = FaultPlan(
            [
                FaultSpec(
                    site="gateway.response",
                    kind="drop",
                    probability=1.0,
                    max_fires=1,
                )
            ],
            seed=3,
        )
        service, scene_id = serve(scene, fault_plan=plan)
        try:
            with GatewayServer(service) as server:
                with SyncGatewayClient(
                    port=server.port,
                    retry=RetryPolicy(max_attempts=3, backoff_base=0.001),
                    fault_plan=plan,
                ) as client:
                    response = client.solve(make_request(scene_id, seed=7))
                    assert isinstance(response, AuctionResponse)
                    assert response.seed == 7
                    stats = client.stats()
                    counters = server.gateway.counters()
            assert stats["retries"] == 1
            assert counters["dropped_responses"] == 1
            assert counters["journal_hits"] == 1
            assert counters["journal_misses"] == 1
            assert counters["duplicate_solves"] == 0
        finally:
            service.close()

    def test_truncated_response_is_retried(self, scene):
        plan = FaultPlan(
            [
                FaultSpec(
                    site="gateway.response",
                    kind="truncate",
                    probability=1.0,
                    max_fires=1,
                )
            ],
            seed=4,
        )
        service, scene_id = serve(scene, fault_plan=plan)
        try:
            with GatewayServer(service) as server:
                with SyncGatewayClient(
                    port=server.port,
                    retry=RetryPolicy(max_attempts=3, backoff_base=0.001),
                    fault_plan=plan,
                ) as client:
                    response = client.solve(make_request(scene_id, seed=8))
                    assert response.seed == 8
                    counters = server.gateway.counters()
            assert counters["dropped_responses"] == 1
            assert counters["duplicate_solves"] == 0
        finally:
            service.close()

    def test_404_is_never_retried(self, scene):
        service, _scene_id = serve(scene)
        try:
            with GatewayServer(service) as server:
                with SyncGatewayClient(
                    port=server.port,
                    retry=RetryPolicy(max_attempts=5, backoff_base=0.001),
                ) as client:
                    with pytest.raises(KeyError):
                        client.solve(make_request("f" * 16, seed=9))
                    stats = client.stats()
            assert stats["attempts"] == 1
            assert stats["retries"] == 0
        finally:
            service.close()

    def test_504_deadline_is_never_retried(self, scene):
        """The budget is spent either way — a retry cannot help.  A slow
        solve blocks the queue so the second request's deadline expires
        before dispatch (the test_gateway.py 504 recipe), and the client
        must surface the typed failure after exactly one attempt."""
        plan = FaultPlan(
            [FaultSpec(site="service.solve", kind="slow", delay=0.4)]
        )
        service, scene_id = serve(scene, fault_plan=plan, degrade_headroom=0.0)
        try:
            with GatewayServer(service) as server:
                with SyncGatewayClient(
                    port=server.port,
                    retry=RetryPolicy(max_attempts=5, backoff_base=0.001),
                ) as client:
                    blocker = client.submit(make_request(scene_id, seed=41))
                    with pytest.raises(DeadlineExceeded):
                        client.solve(
                            make_request(scene_id, seed=10, deadline=0.05)
                        )
                    assert blocker.result(timeout=60).feasible
                    stats = client.stats()
            assert stats["attempts"] == 2  # blocker + doomed, no retries
            assert stats["retries"] == 0
        finally:
            service.close()


class TestIdempotentReplay:
    def test_duplicate_submit_is_a_journal_hit_without_a_second_solve(
        self, scene
    ):
        service, scene_id = serve(scene)
        try:
            with GatewayServer(service) as server:
                with SyncGatewayClient(port=server.port) as client:
                    first = client.solve(make_request(scene_id, seed=9))
                    second = client.solve(make_request(scene_id, seed=9))
                    counters = server.gateway.counters()
            assert first == second  # byte-identical replay of the payload
            assert counters["journal_misses"] == 1  # exactly one solve begun
            assert counters["journal_hits"] == 1
            assert counters["duplicate_solves"] == 0
        finally:
            service.close()

    def test_capacity_zero_disables_the_journal_and_counts_duplicates(
        self, scene
    ):
        service, scene_id = serve(scene)
        try:
            with GatewayServer(service, journal_capacity=0) as server:
                with SyncGatewayClient(port=server.port) as client:
                    first = client.solve(make_request(scene_id, seed=9))
                    second = client.solve(make_request(scene_id, seed=9))
                    counters = server.gateway.counters()
            assert first == second  # deterministic solver: same result anyway
            assert counters["journal_hits"] == 0
            assert counters["journal_misses"] == 2
            assert counters["duplicate_solves"] == 1  # the journal would have saved this
        finally:
            service.close()

    def test_explicit_idempotency_key_travels_and_dedupes(self, scene):
        """Two *different* requests under one explicit key: the second is
        served the first's journaled payload — the key is the identity."""
        service, scene_id = serve(scene)
        try:
            with GatewayServer(service) as server:
                with SyncGatewayClient(port=server.port) as client:
                    first = client.solve(
                        make_request(scene_id, seed=11, idempotency_key="pin-1")
                    )
                    second = client.solve(
                        make_request(scene_id, seed=12, idempotency_key="pin-1")
                    )
                    counters = server.gateway.counters()
            assert second == first
            assert second.seed == 11  # the journaled payload, verbatim
            assert counters["journal_hits"] == 1
        finally:
            service.close()


class TestRetryDeterminism:
    def tiny(self, name, n=30):
        return dataclasses.replace(
            scenario_library()[name], num_requests=n, scene_size=12, num_scenes=1
        )

    @pytest.mark.parametrize("name", ["flaky_network", "gateway_partition"])
    def test_two_runs_are_bit_identical(self, name):
        """Same trace + same fault plan ⇒ identical fault firings, retry
        counts, journal traffic, and bit-identical responses."""
        first = run_scenario(self.tiny(name), transport="gateway")
        second = run_scenario(self.tiny(name), transport="gateway")
        for report in (first, second):
            assert report.ok(), report.invariants
            assert report.completed == report.accepted
        assert first.fired == second.fired
        assert first.client == second.client
        assert first.client["retries"] > 0  # the plan actually bit
        # connection counts depend on pool reuse timing; everything the
        # resilience contract speaks about must match exactly
        for key in (
            "refused_connections",
            "dropped_responses",
            "journal_hits",
            "journal_misses",
            "duplicate_solves",
        ):
            assert first.gateway[key] == second.gateway[key], key


class TestHedging:
    def test_hedge_wins_over_a_slow_path_without_duplicate_solves(self, scene):
        spec = FaultSpec(
            site="client.connect", kind="latency", probability=0.5, delay=1.0
        )
        # pick seeds deterministically from a probe copy of the plan:
        # warm-up seeds must not fire, the target must fire on attempt 1
        # (so its primary sleeps) and not on the hedge ordinal
        probe = FaultPlan([spec], seed=2)
        fires = {
            s: probe.fires("client.connect", key=(s, 1)) is not None
            for s in range(64)
        }
        slow_seed = next(
            s
            for s, fired in fires.items()
            if fired and probe.fires("client.connect", key=(s, 2)) is None
        )
        fast_seeds = [s for s, fired in fires.items() if not fired][:6]
        assert len(fast_seeds) == 6

        service, scene_id = serve(scene)
        policy = RetryPolicy(
            max_attempts=1, hedge=True, hedge_min_delay=0.02, hedge_after_samples=4
        )
        try:
            with GatewayServer(service) as server:
                with SyncGatewayClient(
                    port=server.port,
                    retry=policy,
                    fault_plan=FaultPlan([spec], seed=2),
                ) as client:
                    for s in fast_seeds:  # build the p99 window
                        client.solve(make_request(scene_id, seed=s))
                    t0 = time.perf_counter()
                    response = client.solve(make_request(scene_id, seed=slow_seed))
                    elapsed = time.perf_counter() - t0
                    stats = client.stats()
                    counters = server.gateway.counters()
            assert response.seed == slow_seed
            assert stats["hedges_launched"] == 1
            assert stats["hedges_won"] == 1
            assert elapsed < 1.0  # did not wait out the injected second
            assert counters["duplicate_solves"] == 0
        finally:
            service.close()


class TestReplicaFailover:
    def test_killing_one_of_two_replicas_loses_no_accepted_request(self, scene):
        service = AuctionService(executor="serial", coalesce_window=0.002)
        scene_id = service.register_scene(scene)
        server_a = GatewayServer(service).start()
        server_b = GatewayServer(service).start()
        client = SyncReplicaClient(
            [("127.0.0.1", server_a.port), ("127.0.0.1", server_b.port)],
            retry=RetryPolicy(max_attempts=2, backoff_base=0.002),
            probe_interval=0.05,
            failure_threshold=2,
            cooldown=30.0,  # the dead replica must stay out for this test
            request_timeout=10.0,
        )
        try:
            futures = []
            for i in range(40):
                futures.append(client.submit(make_request(scene_id, seed=100 + i)))
                if i == 10:
                    server_a.kill()
                time.sleep(0.005)
            results = [future.result(timeout=60) for future in futures]
            assert all(isinstance(r, AuctionResponse) for r in results)

            stats = client.stats()
            dead = [r for r in stats["replicas"] if not r["live"]]
            assert len(dead) == 1
            assert dead[0]["endpoint"].endswith(f":{server_a.port}")
            assert stats["evictions"] == 1
            assert service.healthy()  # the pool-side service never flinched

            # accepted requests are bit-identical to fault-free replay
            expected = service.solve_batch(
                [make_request(scene_id, seed=100 + i) for i in range(40)]
            )
            assert results == expected
        finally:
            client.close()
            server_b.close()
            server_a.close()
            service.close()

    def test_replica_set_requires_endpoints(self):
        with pytest.raises(ValueError, match="endpoint"):
            SyncReplicaClient([])
