"""Tests for ordering heuristics."""

from __future__ import annotations


from repro.graphs.conflict_graph import ConflictGraph
from repro.graphs.generators import clique, gnp_random_graph, path, star
from repro.graphs.inductive import inductive_independence_number, rho_of_ordering
from repro.graphs.orderings import (
    degeneracy_ordering,
    max_degree_first_ordering,
    ordering_quality,
    random_ordering,
)


class TestDegeneracyOrdering:
    def test_star_center_early(self):
        g = star(6)
        o = degeneracy_ordering(g)
        # Leaves are peeled first, so the center lands near the front of π
        # (ties among degree-1 vertices may put one leaf before it) and the
        # ordering achieves the optimal ρ = 1.
        assert o.position(0) <= 1
        assert rho_of_ordering(g, o) == 1

    def test_rho_on_path(self):
        g = path(8)
        assert rho_of_ordering(g, degeneracy_ordering(g)) == 1

    def test_backward_degree_bounded_by_degeneracy(self):
        import networkx as nx

        for seed in range(4):
            g = gnp_random_graph(15, 0.3, seed=seed)
            o = degeneracy_ordering(g)
            quality = ordering_quality(g, o)
            nx_core = max(nx.core_number(g.to_networkx()).values(), default=0)
            assert quality["max_backward_degree"] <= nx_core

    def test_clique(self):
        g = clique(5)
        assert rho_of_ordering(g, degeneracy_ordering(g)) == 1


class TestHeuristicComparison:
    def test_all_heuristics_upper_bound_exact(self):
        for seed in range(3):
            g = gnp_random_graph(12, 0.35, seed=seed)
            rho_exact, _ = inductive_independence_number(g)
            for ordering in (
                degeneracy_ordering(g),
                max_degree_first_ordering(g),
                random_ordering(g, seed=seed),
            ):
                assert rho_of_ordering(g, ordering) >= rho_exact

    def test_random_ordering_reproducible(self):
        g = gnp_random_graph(10, 0.3, seed=5)
        a = random_ordering(g, seed=7)
        b = random_ordering(g, seed=7)
        assert a == b

    def test_quality_dict_shape(self):
        g = path(5)
        q = ordering_quality(g, degeneracy_ordering(g))
        assert set(q) == {"rho", "max_backward_degree"}

    def test_empty_graph(self):
        g = ConflictGraph(4)
        q = ordering_quality(g, degeneracy_ordering(g))
        assert q["rho"] == 0 and q["max_backward_degree"] == 0
